examples/misprediction_drill.ml: Grt Grt_gpu Grt_mlfw Grt_net Grt_sim List Printf
