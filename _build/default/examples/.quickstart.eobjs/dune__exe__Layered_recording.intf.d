examples/layered_recording.mli:
