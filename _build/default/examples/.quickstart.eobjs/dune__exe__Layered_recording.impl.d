examples/layered_recording.ml: Array Bytes Grt Grt_gpu Grt_mlfw Grt_net Grt_util List Printf
