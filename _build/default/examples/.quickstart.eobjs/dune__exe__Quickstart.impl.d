examples/quickstart.ml: Array Bytes Format Grt Grt_gpu Grt_mlfw Grt_net Grt_util List Printf
