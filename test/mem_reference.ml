(* Retained reference model of the physical page store — the shape Mem had
   before it went flat: everything keyed by [int64] PFN in hash tables, one
   byte at a time. The differential suite (test_mem_flat) runs random access
   scripts against this oracle and the production store and demands
   identical observable behaviour.

   Every multi-byte accessor here decomposes into byte-ascending [u8]
   operations. That is deliberate: the flat store's partial-write semantics
   around protected pages (a straddling write lands on the first page, then
   traps on the second) fall out of byte-ascending order with a per-page
   protection check at the first touched byte, so the oracle reproduces
   them without modeling the fast paths. *)

exception Protected of int64

let page_size = 4096

type t = {
  pages : (int64, bytes) Hashtbl.t; (* materialized pages only *)
  dirty : (int64, unit) Hashtbl.t;
  prot : (int64, unit) Hashtbl.t;
  mutable next_pfn : int64;
}

let create () =
  {
    pages = Hashtbl.create 64;
    dirty = Hashtbl.create 64;
    prot = Hashtbl.create 8;
    next_pfn = 0x100L;
  }

let pfn_of addr = Int64.shift_right_logical addr 12
let off_of addr = Int64.to_int (Int64.logand addr 0xFFFL)

let alloc_pages t n =
  if n <= 0 then invalid_arg "Mem_reference.alloc_pages";
  let base = t.next_pfn in
  t.next_pfn <- Int64.add t.next_pfn (Int64.of_int n);
  Int64.shift_left base 12

(* Materialize-on-write with protection trap, dirty marking and nothing
   else: generation stamps are a property of the production store that the
   suite checks relationally, not differentially. *)
let page_rw t pfn =
  if Hashtbl.mem t.prot pfn then raise (Protected pfn);
  let p =
    match Hashtbl.find_opt t.pages pfn with
    | Some p -> p
    | None ->
      let p = Bytes.make page_size '\000' in
      Hashtbl.replace t.pages pfn p;
      p
  in
  Hashtbl.replace t.dirty pfn ();
  p

let read_u8 t addr =
  match Hashtbl.find_opt t.pages (pfn_of addr) with
  | None -> 0
  | Some p -> Char.code (Bytes.get p (off_of addr))

let write_u8 t addr v =
  Bytes.set (page_rw t (pfn_of addr)) (off_of addr) (Char.chr (v land 0xFF))

let read_u32 t addr =
  let b k = Int64.of_int (read_u8 t (Int64.add addr (Int64.of_int k))) in
  Int64.logor (b 0)
    (Int64.logor
       (Int64.shift_left (b 1) 8)
       (Int64.logor (Int64.shift_left (b 2) 16) (Int64.shift_left (b 3) 24)))

let write_u32 t addr v =
  let v = Int64.to_int (Int64.logand v 0xFFFFFFFFL) in
  for k = 0 to 3 do
    write_u8 t (Int64.add addr (Int64.of_int k)) ((v lsr (8 * k)) land 0xFF)
  done

let read_u64 t addr =
  Int64.logor (read_u32 t addr) (Int64.shift_left (read_u32 t (Int64.add addr 4L)) 32)

let write_u64 t addr v =
  write_u32 t addr (Int64.logand v 0xFFFFFFFFL);
  write_u32 t (Int64.add addr 4L) (Int64.shift_right_logical v 32)

let read_f32 t addr = Int32.float_of_bits (Int64.to_int32 (read_u32 t addr))

let write_f32 t addr f =
  write_u32 t addr (Int64.logand (Int64.of_int32 (Int32.bits_of_float f)) 0xFFFFFFFFL)

let write_f32_array t addr values =
  Array.iteri (fun i f -> write_f32 t (Int64.add addr (Int64.of_int (4 * i))) f) values

let read_f32_array t addr n =
  Array.init n (fun i -> read_f32 t (Int64.add addr (Int64.of_int (4 * i))))

let read_bytes t addr n =
  Bytes.init n (fun i -> Char.chr (read_u8 t (Int64.add addr (Int64.of_int i))))

let write_bytes t addr b =
  Bytes.iteri (fun i c -> write_u8 t (Int64.add addr (Int64.of_int i)) (Char.code c)) b

let get_page t pfn =
  match Hashtbl.find_opt t.pages pfn with
  | None -> Bytes.make page_size '\000'
  | Some p -> Bytes.copy p

let set_page t pfn b =
  if Bytes.length b <> page_size then invalid_arg "Mem_reference.set_page";
  if Hashtbl.mem t.prot pfn then raise (Protected pfn);
  (match Hashtbl.find_opt t.pages pfn with
  | Some p -> Bytes.blit b 0 p 0 page_size
  | None -> Hashtbl.replace t.pages pfn (Bytes.copy b));
  Hashtbl.replace t.dirty pfn ()

let protect_pages t pfns = List.iter (fun p -> Hashtbl.replace t.prot p ()) pfns
let unprotect_all t = Hashtbl.reset t.prot

let sorted_keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl [] |> List.sort Int64.compare

let materialized_pages t = sorted_keys t.pages
let dirty_pages t = sorted_keys t.dirty
let protected_pfns t = sorted_keys t.prot
let clear_dirty t = Hashtbl.reset t.dirty
let dirty_bytes t = Hashtbl.length t.dirty * page_size

type snapshot = { snap_pages : (int64 * bytes) list; snap_next : int64; snap_dirty : int64 list }

let snapshot t =
  {
    snap_pages = Hashtbl.fold (fun k v acc -> (k, Bytes.copy v) :: acc) t.pages [];
    snap_next = t.next_pfn;
    snap_dirty = Hashtbl.fold (fun k () acc -> k :: acc) t.dirty [];
  }

(* Like the production store, restore rolls back contents, the allocator
   and the dirty set — protection is not part of a snapshot. *)
let restore t s =
  Hashtbl.reset t.pages;
  List.iter (fun (k, v) -> Hashtbl.replace t.pages k (Bytes.copy v)) s.snap_pages;
  t.next_pfn <- s.snap_next;
  Hashtbl.reset t.dirty;
  List.iter (fun k -> Hashtbl.replace t.dirty k ()) s.snap_dirty
