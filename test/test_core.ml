(* Tests for the GR-T core: recording format, memory synchronization,
   GPUShim batch application, and the DriverShim deferral/speculation
   machinery (§4, §5). *)

module Recording = Grt.Recording
module Memsync = Grt.Memsync
module Gpushim = Grt.Gpushim
module Drivershim = Grt.Drivershim
module Mode = Grt.Mode
module Kbase = Grt_driver.Kbase
module Device = Grt_gpu.Device
module Mem = Grt_gpu.Mem
module Regs = Grt_gpu.Regs
module Sku = Grt_gpu.Sku
module Sexpr = Grt_util.Sexpr
module Session = Grt_runtime.Session
module Profile = Grt_net.Profile
module Link = Grt_net.Link
module Clock = Grt_sim.Clock
module Counters = Grt_sim.Counters

let check = Alcotest.check

(* ---- Recording ---- *)

let sample_recording () =
  {
    Recording.workload = "MNIST";
    gpu_id = Sku.g71_mp8.Sku.gpu_id;
    entries =
      [|
        Recording.Mem_load { pages = [ (0x100L, Bytes.make Mem.page_size 'p') ] };
        Recording.Reg_write { reg = Regs.gpu_command; value = 1L };
        Recording.Poll
          {
            reg = Regs.gpu_irq_rawstat;
            mask = Regs.irq_reset_completed;
            cond = Recording.Until_set;
            max_iters = 100;
            spin_ns = 1000L;
          };
        Recording.Reg_read { reg = Regs.gpu_id; value = Sku.g71_mp8.Sku.gpu_id; verify = true };
        Recording.Reg_read { reg = Regs.latest_flush_id; value = 7L; verify = false };
        Recording.Wait_irq { line = 0 };
      |];
    slots =
      [
        {
          Recording.slot_name = "input";
          kind = `Input;
          va = 0x4000_0000L;
          pa = 0x10_0000L;
          actual_bytes = 3136;
          model_bytes = 3136;
        };
        {
          Recording.slot_name = "act.08";
          kind = `Output;
          va = 0x4100_0000L;
          pa = 0x20_0000L;
          actual_bytes = 40;
          model_bytes = 40;
        };
        {
          Recording.slot_name = "w.01";
          kind = `Param;
          va = 0x4200_0000L;
          pa = 0x30_0000L;
          actual_bytes = 600;
          model_bytes = 600;
        };
      ];
  }

let recording_roundtrip () =
  let r = sample_recording () in
  match Recording.deserialize (Recording.serialize r) with
  | Ok r' ->
    check Alcotest.string "workload" r.Recording.workload r'.Recording.workload;
    check Alcotest.int64 "gpu id" r.Recording.gpu_id r'.Recording.gpu_id;
    check Alcotest.int "entries" (Array.length r.Recording.entries)
      (Array.length r'.Recording.entries);
    check Alcotest.bool "entries equal" true (r.Recording.entries = r'.Recording.entries);
    check Alcotest.bool "slots equal" true (r.Recording.slots = r'.Recording.slots)
  | Error e -> Alcotest.fail e

let recording_sign_verify () =
  let r = sample_recording () in
  let blob = Recording.sign ~key:"cloudkey" r in
  (match Recording.verify_and_parse ~key:"cloudkey" blob with
  | Ok r' -> check Alcotest.string "verified" "MNIST" r'.Recording.workload
  | Error e -> Alcotest.fail e);
  match Recording.verify_and_parse ~key:"otherkey" blob with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "wrong key accepted"

let recording_tamper_rejected () =
  (* A local adversary who flips bits in the downloaded recording must be
     caught before replay (§7.1 replay integrity). *)
  let blob = Recording.sign ~key:"cloudkey" (sample_recording ()) in
  Bytes.set blob 40 (Char.chr (Char.code (Bytes.get blob 40) lxor 0x80));
  match Recording.verify_and_parse ~key:"cloudkey" blob with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tampered recording accepted"

let recording_counts_and_slots () =
  let r = sample_recording () in
  check Alcotest.int "writes" 1 (Recording.count_entries r `Writes);
  check Alcotest.int "reads" 2 (Recording.count_entries r `Reads);
  check Alcotest.int "polls" 1 (Recording.count_entries r `Polls);
  check Alcotest.int "irqs" 1 (Recording.count_entries r `Irqs);
  check Alcotest.int "pages" 1 (Recording.count_entries r `Mem_pages);
  check Alcotest.bool "input slot" true
    ((Option.get (Recording.input_slot r)).Recording.slot_name = "input");
  check Alcotest.bool "output slot" true
    ((Option.get (Recording.output_slot r)).Recording.slot_name = "act.08");
  check Alcotest.int "param slots" 1 (List.length (Recording.param_slots r))

let gen_entry =
  let open QCheck2.Gen in
  let reg = map (fun r -> r land 0x3FFC) nat in
  frequency
    [
      (4, map2 (fun r v -> Recording.Reg_write { reg = r; value = v }) reg int64);
      ( 4,
        map3
          (fun r v verify -> Recording.Reg_read { reg = r; value = v; verify })
          reg int64 bool );
      ( 2,
        map3
          (fun r m iters ->
            Recording.Poll
              { reg = r; mask = m; cond = Recording.Until_set; max_iters = iters; spin_ns = 1000L })
          reg int64 small_nat );
      (1, map (fun l -> Recording.Wait_irq { line = l mod 3 }) small_nat);
      ( 1,
        map
          (fun pages ->
            Recording.Mem_load
              {
                pages =
                  List.map
                    (fun (pfn, fill) ->
                      (Int64.of_int pfn, Bytes.make Mem.page_size (Char.chr (fill land 0xFF))))
                    pages;
              })
          (list_size (int_bound 3) (pair small_nat small_nat)) );
    ]

let recording_qcheck_roundtrip =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:100 ~name:"arbitrary recordings roundtrip"
       QCheck2.Gen.(list_size (int_bound 40) gen_entry)
       (fun entries ->
         let r =
           {
             Recording.workload = "prop";
             gpu_id = 0x1234L;
             entries = Array.of_list entries;
             slots = [];
           }
         in
         match Recording.deserialize (Recording.serialize r) with
         | Ok r' -> r'.Recording.entries = r.Recording.entries
         | Error _ -> false))

let recording_qcheck_signature =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:60 ~name:"bit flips anywhere break the signature"
       QCheck2.Gen.(pair (list_size (int_range 1 20) gen_entry) (pair small_nat (int_range 1 255)))
       (fun (entries, (pos, delta)) ->
         let r =
           {
             Recording.workload = "prop";
             gpu_id = 0x1234L;
             entries = Array.of_list entries;
             slots = [];
           }
         in
         let blob = Recording.sign ~key:"k" r in
         let pos = pos mod Bytes.length blob in
         Bytes.set blob pos (Char.chr (Char.code (Bytes.get blob pos) lxor delta));
         match Recording.verify_and_parse ~key:"k" blob with
         | Error _ -> true
         | Ok _ -> false))

let recording_garbage_rejected () =
  match Recording.deserialize (Bytes.of_string "not a recording at all....") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage parsed"

(* ---- Memsync ---- *)

let mk_region ~name ~usage ~pa ~bytes =
  {
    Memsync.name;
    usage;
    va = Int64.add 0x4000_0000L pa;
    pa;
    model_bytes = bytes;
    actual_bytes = bytes;
  }

let memsync_meta_classification () =
  let mem = Mem.create () in
  let ms = Memsync.create (Mode.default_config Mode.Ours_m) in
  let code_pa = Mem.alloc_pages mem 1 in
  let data_pa = Mem.alloc_pages mem 2 in
  Mem.write_u8 mem code_pa 1;
  Mem.write_u8 mem data_pa 1;
  Memsync.register_region ms (mk_region ~name:"shader" ~usage:Session.Code ~pa:code_pa ~bytes:128);
  Memsync.register_region ms (mk_region ~name:"weights" ~usage:Session.Weights ~pa:data_pa ~bytes:8192);
  let metas = Memsync.meta_pfns ms mem in
  check Alcotest.bool "code page is meta" true (List.mem (Mem.page_of_addr code_pa) metas);
  check Alcotest.bool "weights are not" false (List.mem (Mem.page_of_addr data_pa) metas)

let memsync_pt_pages_are_meta () =
  let mem = Mem.create () in
  let ms = Memsync.create (Mode.default_config Mode.Ours_m) in
  let mmu = Grt_gpu.Mmu.create mem ~fmt:Sku.Lpae_v7 in
  let pa = Mem.alloc_pages mem 1 in
  Grt_gpu.Mmu.map_page mmu ~va:0x1000L ~pa ~flags:Grt_gpu.Mmu.rw_data;
  Memsync.register_pt_root ms ~fmt:Sku.Lpae_v7 ~root_pa:(Grt_gpu.Mmu.root_pa mmu);
  check Alcotest.int "all three table levels" 3 (List.length (Memsync.meta_pfns ms mem))

let memsync_sync_and_baseline () =
  let mem = Mem.create () in
  let ms = Memsync.create (Mode.default_config Mode.Ours_m) in
  let code_pa = Mem.alloc_pages mem 1 in
  Mem.write_u32 mem code_pa 0xAAL;
  Memsync.register_region ms (mk_region ~name:"cmd" ~usage:Session.Cmd ~pa:code_pa ~bytes:64);
  let p1 = Memsync.sync_meta ms mem in
  check Alcotest.int "first sync ships page" 1 (List.length p1.Memsync.records);
  let p2 = Memsync.sync_meta ms mem in
  check Alcotest.int "unchanged page not re-shipped" 0 (List.length p2.Memsync.records);
  Mem.write_u32 mem code_pa 0xBBL;
  let p3 = Memsync.sync_meta ms mem in
  check Alcotest.int "changed page ships again" 1 (List.length p3.Memsync.records);
  check Alcotest.bool "delta+compressed smaller than raw" true
    (p3.Memsync.wire_bytes < p3.Memsync.raw_bytes)

let memsync_apply_and_note () =
  let src = Mem.create () and dst = Mem.create () in
  let ms = Memsync.create (Mode.default_config Mode.Ours_m) in
  let pa = Mem.alloc_pages src 1 in
  Mem.write_u32 src pa 0x1234L;
  Memsync.register_region ms (mk_region ~name:"cmd" ~usage:Session.Cmd ~pa ~bytes:64);
  let p = Memsync.sync_meta ms src in
  Memsync.apply (Memsync.create (Mode.default_config Mode.Ours_m)) dst p;
  check Alcotest.int64 "applied" 0x1234L (Mem.read_u32 dst pa);
  (* note_peer_page prevents echo *)
  let ms2 = Memsync.create (Mode.default_config Mode.Ours_m) in
  Memsync.register_region ms2 (mk_region ~name:"cmd" ~usage:Session.Cmd ~pa ~bytes:64);
  List.iter (fun (pfn, data) -> Memsync.note_peer_page ms2 pfn data) (Memsync.pages p);
  let echo = Memsync.sync_meta ms2 src in
  check Alcotest.int "no echo" 0 (List.length echo.Memsync.records)

let memsync_naive_ship_once () =
  let mem = Mem.create () in
  let ms = Memsync.create (Mode.default_config Mode.Naive) in
  (* Build a chain region + weight + output regions, write a descriptor. *)
  let cmd_pa = Mem.alloc_pages mem 1 in
  let w_pa = Mem.alloc_pages mem 1 in
  let out_pa = Mem.alloc_pages mem 1 in
  let cmd = mk_region ~name:"cmd" ~usage:Session.Cmd ~pa:cmd_pa ~bytes:256 in
  let w = mk_region ~name:"w" ~usage:Session.Weights ~pa:w_pa ~bytes:4096 in
  let out = mk_region ~name:"out" ~usage:Session.Output ~pa:out_pa ~bytes:2048 in
  Memsync.register_region ms cmd;
  Memsync.register_region ms w;
  Memsync.register_region ms out;
  Grt_gpu.Job_desc.write mem ~pa:cmd_pa
    {
      Grt_gpu.Job_desc.op = Grt_gpu.Shader.Fc;
      shader_va = 0L;
      input_va = w.Memsync.va;
      input2_va = 0L;
      bias_va = 0L;
      output_va = out.Memsync.va;
      params = Grt_gpu.Job_desc.default_params;
      next_va = 0L;
    };
  let d1 = Memsync.naive_down_bytes ms mem ~chain_va:cmd.Memsync.va in
  check Alcotest.int "first job ships weights+output" (4096 + 2048) d1;
  let d2 = Memsync.naive_down_bytes ms mem ~chain_va:cmd.Memsync.va in
  check Alcotest.int "second job ships nothing new" 0 d2;
  let u = Memsync.naive_up_bytes ms mem ~chain_va:cmd.Memsync.va in
  check Alcotest.int "output comes back every job" 2048 u

(* ---- Gpushim ---- *)

let mk_gpushim () =
  let clock = Clock.create () in
  Gpushim.create ~clock ~sku:Sku.g71_mp8 ~session_salt:9L
    ~cfg:(Mode.default_config Mode.Ours_mds) ()

let gpushim_requires_isolation () =
  let g = mk_gpushim () in
  (match Gpushim.apply_accesses g [ Gpushim.W_read Regs.gpu_id ] with
  | _ -> Alcotest.fail "worked without isolation"
  | exception Gpushim.Not_isolated -> ());
  Gpushim.isolate g;
  check Alcotest.bool "isolated" true (Gpushim.isolated g);
  check (Alcotest.list Alcotest.int64) "read works when isolated"
    [ Sku.g71_mp8.Sku.gpu_id ]
    (Array.to_list (Gpushim.apply_accesses g [ Gpushim.W_read Regs.gpu_id ]))

let gpushim_tzasc_blocks_normal_world () =
  let g = mk_gpushim () in
  Gpushim.isolate g;
  (match Grt_tee.Worlds.check_access (Gpushim.worlds g) Grt_tee.Worlds.Normal ~name:"gpu-mmio" with
  | () -> Alcotest.fail "normal world touched locked GPU"
  | exception Grt_tee.Worlds.Access_denied _ -> ());
  Gpushim.release g;
  Grt_tee.Worlds.check_access (Gpushim.worlds g) Grt_tee.Worlds.Normal ~name:"gpu-mmio"

let gpushim_batch_refs () =
  (* Listing 1(a) on the wire: read MMU_CONFIG, then write back
     (batch_value | 0x10) — resolved incrementally while applying. *)
  let g = mk_gpushim () in
  Gpushim.isolate g;
  let quirk = Sku.g71_mp8.Sku.quirk_mmu_config in
  let results =
    Gpushim.apply_accesses g
      [
        Gpushim.W_read Regs.mmu_config;
        Gpushim.W_write (Regs.mmu_config, Gpushim.Bop (Sexpr.Or, Gpushim.Batch 0, Gpushim.Lit 0x10L));
        Gpushim.W_read Regs.mmu_config;
      ]
  in
  (match Array.to_list results with
  | [ first; second ] ->
    check Alcotest.int64 "first read is reset value" quirk first;
    check Alcotest.int64 "second read sees resolved write" (Int64.logor quirk 0x10L) second
  | _ -> Alcotest.fail "expected two read results");
  (* Forward references must be rejected. *)
  match
    Gpushim.apply_accesses g [ Gpushim.W_write (Regs.mmu_config, Gpushim.Batch 0) ]
  with
  | _ -> Alcotest.fail "forward batch reference accepted"
  | exception Failure _ -> ()

let gpushim_poll_and_reset () =
  let g = mk_gpushim () in
  Gpushim.isolate g;
  (* Kick a power-up, then offload-poll for readiness. *)
  ignore (Gpushim.apply_accesses g [ Gpushim.W_write (Regs.shader_pwron_lo, Gpushim.Lit 0xFFL) ]);
  (match
     Gpushim.run_poll g ~reg:Regs.shader_ready_lo ~mask:0xFFL ~cond:Grt_driver.Backend.Bits_set
       ~max_iters:100000 ~spin_ns:1000L
   with
  | Some (iters, value) ->
    check Alcotest.int64 "poll result" 0xFFL value;
    check Alcotest.bool "took iterations" true (iters > 1)
  | None -> Alcotest.fail "poll timed out");
  Gpushim.reset_gpu g;
  check Alcotest.int64 "reset cleared cores" 0L
    (Device.read_reg (Gpushim.device g) Regs.shader_ready_lo)

(* ---- Drivershim mechanisms (through the real driver) ---- *)

type rig = {
  shim : Drivershim.t;
  gpushim : Gpushim.t;
  drv : Kbase.t;
  cloud_mem : Mem.t;
  counters : Counters.t;
  clock : Clock.t;
}

let mk_rig ?(mode = Mode.Ours_md) ?history ?config () =
  let clock = Clock.create () in
  let counters = Counters.create () in
  let link = Link.create ~clock ~counters Profile.wifi in
  let cfg = match config with Some c -> c | None -> Mode.default_config mode in
  let gpushim = Gpushim.create ~clock ~sku:Sku.g71_mp8 ~counters ~session_salt:4L ~cfg () in
  Gpushim.isolate gpushim;
  let cloud_mem = Mem.create () in
  let shim = Drivershim.create ~cfg ~link ~gpushim ~cloud_mem ~counters ?history () in
  let drv = Kbase.create ~backend:(Drivershim.backend shim) ~mem:cloud_mem ~coherency_ace:true in
  { shim; gpushim; drv; cloud_mem; counters; clock }

let drivershim_defers_and_batches () =
  let r = mk_rig ~mode:Mode.Ours_md () in
  Kbase.init r.drv;
  Drivershim.finalize r.shim;
  let accesses = Drivershim.accesses_total r.shim in
  let commits = Drivershim.commits_total r.shim in
  check Alcotest.bool "some deferral happened" true (Drivershim.accesses_deferred r.shim > 0);
  check Alcotest.bool "batching: fewer commits than accesses" true (commits < accesses)

let drivershim_symbolic_quirk_reaches_client () =
  (* The Listing 1(a) data dependency, end to end: after init, the CLIENT
     device must hold MMU_CONFIG = quirk | SNOOP_DISPARITY even though the
     value travelled as a symbolic expression. *)
  let r = mk_rig ~mode:Mode.Ours_md () in
  Kbase.init r.drv;
  Drivershim.finalize r.shim;
  let v = Device.read_reg (Gpushim.device r.gpushim) Regs.mmu_config in
  check Alcotest.int64 "resolved on client"
    (Int64.logor Sku.g71_mp8.Sku.quirk_mmu_config 0x10L)
    v

let drivershim_naive_one_rtt_per_access () =
  let r = mk_rig ~mode:Mode.Naive () in
  Kbase.init r.drv;
  Drivershim.finalize r.shim;
  let accesses = Drivershim.accesses_total r.shim in
  let rtts = Counters.get_int r.counters "net.blocking_rtts" in
  (* every register access is one blocking round trip (plus sync traffic) *)
  check Alcotest.bool "rtts >= accesses" true (rtts >= accesses)

let drivershim_md_fewer_rtts_than_naive () =
  let naive = mk_rig ~mode:Mode.Naive () in
  Kbase.init naive.drv;
  Drivershim.finalize naive.shim;
  let md = mk_rig ~mode:Mode.Ours_md () in
  Kbase.init md.drv;
  Drivershim.finalize md.shim;
  check Alcotest.bool "deferral cuts RTTs" true
    (Counters.get_int md.counters "net.blocking_rtts"
    < Counters.get_int naive.counters "net.blocking_rtts")

let drivershim_speculation_warms_up () =
  let history = Drivershim.fresh_history () in
  let run () =
    let r = mk_rig ~mode:Mode.Ours_mds ~history () in
    Kbase.init r.drv;
    Drivershim.finalize r.shim;
    (Drivershim.commits_speculated r.shim, Counters.get_int r.counters "net.blocking_rtts")
  in
  let spec1, rtts1 = run () in
  let _ = run () in
  let _ = run () in
  let spec4, rtts4 = run () in
  check Alcotest.bool "cold run speculates little" true (spec1 <= spec4);
  check Alcotest.bool "warm run speculates" true (spec4 > 0);
  check Alcotest.bool "warm run has fewer blocking RTTs" true (rtts4 < rtts1)

let drivershim_speculated_log_matches_sync_log () =
  (* Determinism: the interaction log of a fully-warmed speculative run must
     equal the log of a deferral-only run (same stimuli, same responses),
     modulo the nondeterministic registers. *)
  let history = Drivershim.fresh_history () in
  let run mode =
    let r = mk_rig ~mode ~history () in
    Kbase.init r.drv;
    Drivershim.finalize r.shim;
    List.filter_map
      (function
        | Recording.Reg_write { reg; value } -> Some (`W, reg, value)
        | Recording.Reg_read { reg; value; verify = true } -> Some (`R, reg, value)
        | _ -> None)
      (Drivershim.entries r.shim)
  in
  let md = run Mode.Ours_md in
  for _ = 1 to 3 do
    ignore (run Mode.Ours_mds)
  done;
  let mds = run Mode.Ours_mds in
  check Alcotest.bool "same verified interaction sequence" true (md = mds)

let drivershim_mispredict_detected () =
  let history = Drivershim.fresh_history () in
  for _ = 1 to 3 do
    let r = mk_rig ~mode:Mode.Ours_mds ~history () in
    Kbase.init r.drv;
    Drivershim.finalize r.shim
  done;
  let r = mk_rig ~mode:Mode.Ours_mds ~history () in
  Drivershim.inject_fault_after r.shim 2;
  match
    Kbase.init r.drv;
    Drivershim.finalize r.shim
  with
  | () -> Alcotest.fail "injected wrong value not detected"
  | exception Drivershim.Mispredict _ -> ()
  | exception Fun.Finally_raised (Drivershim.Mispredict _) -> ()

let drivershim_poll_offload_one_message () =
  let cfg = Mode.default_config Mode.Ours_mds in
  let r = mk_rig ~config:cfg ~mode:Mode.Ours_mds () in
  Kbase.init r.drv;
  Drivershim.finalize r.shim;
  check Alcotest.bool "polls offloaded" true (Counters.get_int r.counters "poll.offloaded" > 0);
  check Alcotest.int "offloaded = instances"
    (Counters.get_int r.counters "poll.instances")
    (Counters.get_int r.counters "poll.offloaded")

let drivershim_entries_replayable_order () =
  (* The log must put the job-start Mem_load before the START write. *)
  let r = mk_rig ~mode:Mode.Ours_md () in
  Kbase.init r.drv;
  Drivershim.finalize r.shim;
  let entries = Drivershim.entries r.shim in
  (* Init produces no Mem_load (no jobs), but must contain the soft reset
     command write before the reset poll. *)
  let rec find_order = function
    | Recording.Reg_write { reg; value } :: rest
      when reg = Regs.gpu_command && Int64.equal value Regs.cmd_soft_reset ->
      let rec has_poll = function
        | Recording.Poll { reg; _ } :: _ when reg = Regs.gpu_irq_rawstat -> true
        | _ :: rest -> has_poll rest
        | [] -> false
      in
      has_poll rest
    | _ :: rest -> find_order rest
    | [] -> false
  in
  check Alcotest.bool "reset write precedes its poll" true (find_order entries)

let () =
  Alcotest.run "grt_core"
    [
      ( "recording",
        [
          Alcotest.test_case "roundtrip" `Quick recording_roundtrip;
          Alcotest.test_case "sign/verify" `Quick recording_sign_verify;
          Alcotest.test_case "tamper rejected" `Quick recording_tamper_rejected;
          Alcotest.test_case "counts and slots" `Quick recording_counts_and_slots;
          Alcotest.test_case "garbage rejected" `Quick recording_garbage_rejected;
          recording_qcheck_roundtrip;
          recording_qcheck_signature;
        ] );
      ( "memsync",
        [
          Alcotest.test_case "meta classification" `Quick memsync_meta_classification;
          Alcotest.test_case "pt pages are meta" `Quick memsync_pt_pages_are_meta;
          Alcotest.test_case "sync and baseline" `Quick memsync_sync_and_baseline;
          Alcotest.test_case "apply and note" `Quick memsync_apply_and_note;
          Alcotest.test_case "naive ships once" `Quick memsync_naive_ship_once;
        ] );
      ( "gpushim",
        [
          Alcotest.test_case "requires isolation" `Quick gpushim_requires_isolation;
          Alcotest.test_case "TZASC blocks normal world" `Quick gpushim_tzasc_blocks_normal_world;
          Alcotest.test_case "batch references" `Quick gpushim_batch_refs;
          Alcotest.test_case "poll and reset" `Quick gpushim_poll_and_reset;
        ] );
      ( "drivershim",
        [
          Alcotest.test_case "defers and batches" `Quick drivershim_defers_and_batches;
          Alcotest.test_case "symbolic quirk reaches client" `Quick
            drivershim_symbolic_quirk_reaches_client;
          Alcotest.test_case "naive: RTT per access" `Quick drivershim_naive_one_rtt_per_access;
          Alcotest.test_case "deferral cuts RTTs" `Quick drivershim_md_fewer_rtts_than_naive;
          Alcotest.test_case "speculation warms up" `Quick drivershim_speculation_warms_up;
          Alcotest.test_case "speculated log = sync log" `Quick
            drivershim_speculated_log_matches_sync_log;
          Alcotest.test_case "mispredict detected" `Quick drivershim_mispredict_detected;
          Alcotest.test_case "poll offload" `Quick drivershim_poll_offload_one_message;
          Alcotest.test_case "replayable entry order" `Quick drivershim_entries_replayable_order;
        ] );
    ]
