(* Tests for the network model: profile math, link cost accounting
   (blocking round trips, async sends, stall waits, one-ways) and message
   framing. *)

module Profile = Grt_net.Profile
module Link = Grt_net.Link
module Frame = Grt_net.Frame
module Clock = Grt_sim.Clock
module Counters = Grt_sim.Counters

let check = Alcotest.check

let feq = Alcotest.float 1e-9

(* ---- Profile ---- *)

let profile_presets () =
  check feq "wifi rtt" 0.020 Profile.wifi.Profile.rtt_s;
  check feq "wifi bw" 80.0e6 Profile.wifi.Profile.bandwidth_bps;
  check feq "cellular rtt" 0.050 Profile.cellular.Profile.rtt_s;
  check feq "cellular bw" 40.0e6 Profile.cellular.Profile.bandwidth_bps

let profile_one_way_math () =
  let p = Profile.custom ~name:"t" ~rtt_ms:10.0 ~bandwidth_mbps:8.0 in
  (* half RTT (5 ms) + 1000 bytes at 8 Mbps (1 ms) + per-message. *)
  check feq "one way" (0.005 +. 0.001 +. p.Profile.per_message_s) (Profile.one_way_s p 1000)

let profile_round_trip_math () =
  let p = Profile.wifi in
  check feq "rt = both ways"
    (Profile.one_way_s p 100 +. Profile.one_way_s p 200)
    (Profile.round_trip_s p ~send_bytes:100 ~recv_bytes:200)

let profile_custom_validation () =
  Alcotest.check_raises "bad bw" (Invalid_argument "Profile.custom") (fun () ->
      ignore (Profile.custom ~name:"x" ~rtt_ms:1.0 ~bandwidth_mbps:0.0))

let profile_ordering () =
  (* Cellular must be strictly slower than WiFi for any message size —
     Figure 7b sits above Figure 7a because of this. *)
  List.iter
    (fun bytes ->
      check Alcotest.bool "cellular slower" true
        (Profile.one_way_s Profile.cellular bytes > Profile.one_way_s Profile.wifi bytes))
    [ 0; 100; 10_000; 1_000_000 ]

(* ---- Link ---- *)

let make_link profile =
  let clock = Clock.create () in
  let counters = Counters.create () in
  (Link.create ~clock ~counters profile, clock, counters)

let link_round_trip_blocks () =
  let link, clock, counters = make_link Profile.wifi in
  Link.round_trip link ~send_bytes:100 ~recv_bytes:100;
  check Alcotest.bool "clock advanced by ~rtt" true (Clock.now_s clock >= 0.020);
  check Alcotest.int "one blocking rtt" 1 (Counters.get_int counters "net.blocking_rtts");
  check Alcotest.int64 "tx counted" 100L (Counters.get counters "net.bytes_tx");
  check Alcotest.int64 "rx counted" 100L (Counters.get counters "net.bytes_rx")

let link_async_does_not_block () =
  let link, clock, counters = make_link Profile.wifi in
  let completion = Link.async_send link ~send_bytes:64 ~recv_bytes:64 in
  check Alcotest.int64 "clock unchanged" 0L (Clock.now_ns clock);
  check Alcotest.int "no blocking rtt" 0 (Counters.get_int counters "net.blocking_rtts");
  check Alcotest.bool "completion in future" true (Int64.compare completion 0L > 0)

let link_wait_until_counts_only_real_waits () =
  let link, clock, counters = make_link Profile.wifi in
  let completion = Link.async_send link ~send_bytes:64 ~recv_bytes:64 in
  Link.wait_until link completion;
  check Alcotest.int "stalled once" 1 (Counters.get_int counters "net.stall_waits");
  (* A stall is not a blocking round trip: the RTT was already charged by
     async_send's completion time. Counting both would double-report. *)
  check Alcotest.int "no blocking rtt for a stall" 0
    (Counters.get_int counters "net.blocking_rtts");
  check Alcotest.int64 "clock at completion" completion (Clock.now_ns clock);
  (* Second wait on the same (past) deadline is free. *)
  Link.wait_until link completion;
  check Alcotest.int "no extra stall" 1 (Counters.get_int counters "net.stall_waits");
  check Alcotest.int "still no blocking rtt" 0 (Counters.get_int counters "net.blocking_rtts")

let link_accessors_match_counters () =
  let link, _, counters = make_link Profile.wifi in
  Link.round_trip link ~send_bytes:10 ~recv_bytes:10;
  Link.round_trip link ~send_bytes:10 ~recv_bytes:10;
  Link.wait_until link (Link.async_send link ~send_bytes:10 ~recv_bytes:10);
  check Alcotest.int "blocking_rtts" (Counters.get_int counters "net.blocking_rtts")
    (Link.blocking_rtts link);
  check Alcotest.int "blocking_rtts value" 2 (Link.blocking_rtts link);
  check Alcotest.int "stall_waits" 1 (Link.stall_waits link);
  check Alcotest.int "retransmits (clean link)" 0 (Link.retransmits link)

let link_one_ways () =
  let link, clock, counters = make_link Profile.wifi in
  Link.one_way_to_client link ~bytes:1000;
  let after_down = Clock.now_s clock in
  check Alcotest.bool "half rtt-ish" true (after_down >= 0.010);
  Link.one_way_from_client link ~bytes:500;
  check Alcotest.int64 "down counted as tx" 1000L (Counters.get counters "net.bytes_tx");
  check Alcotest.int64 "up counted as rx" 500L (Counters.get counters "net.bytes_rx")

let link_async_fifo_order () =
  let link, _, _ = make_link Profile.wifi in
  let c1 = Link.async_send link ~send_bytes:64 ~recv_bytes:64 in
  let c2 = Link.async_send link ~send_bytes:64 ~recv_bytes:64 in
  check Alcotest.bool "later send completes no earlier" true (Int64.compare c2 c1 >= 0)

let link_bandwidth_matters () =
  let link_fast, clock_fast, _ = make_link Profile.lan in
  let link_slow, clock_slow, _ = make_link Profile.cellular in
  Link.round_trip link_fast ~send_bytes:1_000_000 ~recv_bytes:0;
  Link.round_trip link_slow ~send_bytes:1_000_000 ~recv_bytes:0;
  check Alcotest.bool "lan much faster" true (Clock.now_s clock_fast *. 5. < Clock.now_s clock_slow)

(* ---- faulty links ---- *)

let make_lossy ?(seed = 11L) ?(drop = 0.3) ?dup ?corrupt ?jitter profile =
  let p = Profile.degrade ?dup_prob:dup ?corrupt_prob:corrupt ?jitter_s:jitter ~drop_prob:drop profile in
  let clock = Clock.create () in
  let counters = Counters.create () in
  (Link.create ~clock ~counters ~seed p, clock, counters)

let drive link n =
  for _ = 1 to n do
    try Link.round_trip link ~send_bytes:64 ~recv_bytes:64 with Link.Link_down _ -> ()
  done

let link_lossy_retransmits () =
  let link, clock, counters = make_lossy Profile.wifi in
  let clean, clean_clock, _ = make_link Profile.wifi in
  for _ = 1 to 50 do
    Link.round_trip clean ~send_bytes:64 ~recv_bytes:64
  done;
  drive link 50;
  check Alcotest.bool "retransmits happened" true (Link.retransmits link > 0);
  check Alcotest.bool "drops counted" true (Counters.get_int counters "net.drops" > 0);
  check Alcotest.bool "loss costs time" true (Clock.now_s clock > Clock.now_s clean_clock)

let link_lossy_deterministic () =
  let run () =
    let link, clock, _ = make_lossy ~seed:99L Profile.wifi in
    drive link 40;
    (Clock.now_ns clock, Link.retransmits link)
  in
  let t1, r1 = run () and t2, r2 = run () in
  check Alcotest.int64 "same virtual time" t1 t2;
  check Alcotest.int "same retransmit count" r1 r2

let link_corruption_counted_separately () =
  let link, _, counters = make_lossy ~drop:0.0 ~corrupt:0.4 Profile.wifi in
  drive link 50;
  check Alcotest.bool "corrupt drops counted" true
    (Counters.get_int counters "net.corrupt_drops" > 0);
  check Alcotest.int "no plain drops" 0 (Counters.get_int counters "net.drops")

let link_dups_cost_nothing_but_counted () =
  let link, clock, counters = make_lossy ~drop:0.0 ~dup:0.5 Profile.wifi in
  let clean, clean_clock, _ = make_link Profile.wifi in
  drive link 30;
  for _ = 1 to 30 do
    Link.round_trip clean ~send_bytes:64 ~recv_bytes:64
  done;
  check Alcotest.bool "dups counted" true (Counters.get_int counters "net.dups" > 0);
  check Alcotest.int "no retransmits from dups" 0 (Link.retransmits link);
  (* Duplicates are discarded by sequence number; they add no latency. *)
  check (Alcotest.float 1e-9) "same virtual time" (Clock.now_s clean_clock) (Clock.now_s clock)

let link_outage_raises_link_down () =
  let link, clock, counters = make_link Profile.wifi in
  Link.inject_outage_after link 1;
  Link.round_trip link ~send_bytes:64 ~recv_bytes:64 (* survives: countdown at 1 *);
  let before = Clock.now_s clock in
  (match Link.round_trip link ~send_bytes:64 ~recv_bytes:64 with
  | () -> Alcotest.fail "outage did not raise"
  | exception Link.Link_down { attempts; op } ->
    check Alcotest.int "gave up after max attempts" Grt_sim.Costs.link_max_attempts attempts;
    check Alcotest.string "op" "round_trip" op);
  check Alcotest.bool "timeouts charged to the clock" true (Clock.now_s clock > before);
  check Alcotest.int "link_down counted" 1 (Counters.get_int counters "net.link_downs");
  check Alcotest.bool "retransmit attempts counted" true (Link.retransmits link > 0)

let link_heavy_loss_eventually_down () =
  let link, _, _ = make_lossy ~seed:3L ~drop:0.9 Profile.wifi in
  let downs = ref 0 in
  for _ = 1 to 30 do
    try Link.round_trip link ~send_bytes:64 ~recv_bytes:64
    with Link.Link_down _ -> incr downs
  done;
  check Alcotest.bool "random loss can exhaust the ARQ" true (!downs > 0)

let link_degraded_state_machine () =
  let link, _, counters = make_lossy ~seed:7L ~drop:0.4 Profile.wifi in
  check Alcotest.bool "starts healthy" true (Link.health link = Link.Healthy);
  drive link 64;
  check Alcotest.bool "tripped degraded" true (Link.health link = Link.Degraded);
  check Alcotest.bool "entry counted" true (Counters.get_int counters "net.degraded_entries" >= 1);
  (* The channel clears up: hysteresis exits after a quiet stretch. *)
  Link.set_profile link Profile.wifi;
  drive link 128;
  check Alcotest.bool "recovered" true (Link.health link = Link.Healthy);
  check Alcotest.bool "exit counted" true (Counters.get_int counters "net.degraded_exits" >= 1)

let link_jitter_keeps_fifo () =
  let link, _, _ = make_lossy ~seed:5L ~drop:0.2 ~jitter:0.080 Profile.wifi in
  let prev = ref 0L in
  for _ = 1 to 40 do
    let c = Link.async_send link ~send_bytes:64 ~recv_bytes:64 in
    check Alcotest.bool "monotonic completion" true (Int64.compare c !prev >= 0);
    prev := c
  done

let profile_degrade_renames () =
  let p = Profile.degrade ~drop_prob:0.05 Profile.wifi in
  check Alcotest.bool "renamed" true (p.Profile.name <> Profile.wifi.Profile.name);
  check Alcotest.bool "has faults" true (Profile.has_faults p);
  check Alcotest.bool "presets clean" false (Profile.has_faults Profile.wifi);
  Alcotest.check_raises "bad prob" (Invalid_argument "Profile.degrade") (fun () ->
      ignore (Profile.degrade ~drop_prob:1.5 Profile.wifi))

(* ---- Frame ---- *)

let frame_roundtrip () =
  let payload = Bytes.of_string "commit #42" in
  let framed = Frame.seal Frame.Commit_request payload in
  match Frame.open_ framed with
  | Ok (Frame.Commit_request, p) -> check Alcotest.bytes "payload" payload p
  | Ok _ -> Alcotest.fail "wrong kind"
  | Error e -> Alcotest.fail e

let frame_all_kinds () =
  List.iter
    (fun k ->
      match Frame.kind_of_int (Frame.kind_to_int k) with
      | Some k' when k = k' -> ()
      | _ -> Alcotest.fail "kind roundtrip failed")
    [
      Frame.Commit_request;
      Frame.Commit_response;
      Frame.Poll_offload;
      Frame.Poll_result;
      Frame.Mem_sync;
      Frame.Mem_sync_ack;
      Frame.Irq_notify;
      Frame.Recording_download;
      Frame.Control;
      Frame.Ack;
      Frame.Nak;
    ]

let frame_seq_roundtrip () =
  let payload = Bytes.of_string "seq'd" in
  let framed = Frame.seal ~seq:123456 Frame.Poll_result payload in
  match Frame.open_full framed with
  | Ok m ->
    check Alcotest.bool "kind" true (m.Frame.kind = Frame.Poll_result);
    check Alcotest.int "seq" 123456 m.Frame.seq;
    check Alcotest.bytes "payload" payload m.Frame.payload
  | Error e -> Alcotest.fail e

let frame_default_seq_zero () =
  match Frame.open_full (Frame.seal Frame.Control Bytes.empty) with
  | Ok m -> check Alcotest.int "seq defaults to 0" 0 m.Frame.seq
  | Error e -> Alcotest.fail e

let frame_ack () =
  match Frame.open_full (Frame.ack ~seq:77) with
  | Ok { Frame.kind = Frame.Ack; seq = 77; payload } ->
    check Alcotest.int "empty payload" 0 (Bytes.length payload)
  | Ok _ -> Alcotest.fail "wrong kind or seq"
  | Error e -> Alcotest.fail e

let frame_corrupt_seq_detected () =
  (* The CRC must cover the header, not just the payload: a damaged
     sequence number would otherwise ack the wrong exchange. *)
  let framed = Frame.seal ~seq:1 Frame.Control (Bytes.of_string "abc") in
  let c = Bytes.copy framed in
  (* seq lives in bytes 5-8, after magic (4) and kind (1) *)
  Bytes.set c 6 (Char.chr (Char.code (Bytes.get c 6) lxor 0x10));
  match Frame.open_full c with
  | Error _ -> ()
  | Ok m ->
    Alcotest.fail (Printf.sprintf "corrupted seq accepted (seq now %d)" m.Frame.seq)

let frame_detects_corruption () =
  let framed = Frame.seal Frame.Mem_sync (Bytes.of_string "page data here") in
  let corrupted = Bytes.copy framed in
  let pos = Bytes.length framed - 6 in
  Bytes.set corrupted pos (Char.chr (Char.code (Bytes.get corrupted pos) lxor 0xFF));
  (match Frame.open_ corrupted with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corruption not detected");
  (* Also corrupt inside the payload. *)
  let corrupted2 = Bytes.copy framed in
  Bytes.set corrupted2 12 '!';
  match Frame.open_ corrupted2 with
  | Error _ -> ()
  | Ok (_, p) ->
    if not (Bytes.equal p (Bytes.of_string "page data here")) then ()
    else Alcotest.fail "payload corruption not detected"

let frame_bad_magic () =
  match Frame.open_ (Bytes.of_string "garbage frame data") with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted garbage"

let frame_truncated () =
  let framed = Frame.seal Frame.Control (Bytes.of_string "x") in
  match Frame.open_ (Bytes.sub framed 0 (Bytes.length framed - 3)) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "accepted truncated frame"

let frame_overhead_accurate () =
  let framed = Frame.seal Frame.Control (Bytes.create 10) in
  check Alcotest.int "overhead constant" Frame.overhead_bytes (Bytes.length framed - 10)

let () =
  Alcotest.run "grt_net"
    [
      ( "profile",
        [
          Alcotest.test_case "presets" `Quick profile_presets;
          Alcotest.test_case "one-way math" `Quick profile_one_way_math;
          Alcotest.test_case "round-trip math" `Quick profile_round_trip_math;
          Alcotest.test_case "custom validation" `Quick profile_custom_validation;
          Alcotest.test_case "cellular slower than wifi" `Quick profile_ordering;
          Alcotest.test_case "degrade renames and validates" `Quick profile_degrade_renames;
        ] );
      ( "link",
        [
          Alcotest.test_case "round trip blocks" `Quick link_round_trip_blocks;
          Alcotest.test_case "async does not block" `Quick link_async_does_not_block;
          Alcotest.test_case "wait_until semantics" `Quick link_wait_until_counts_only_real_waits;
          Alcotest.test_case "one-way transfers" `Quick link_one_ways;
          Alcotest.test_case "async FIFO order" `Quick link_async_fifo_order;
          Alcotest.test_case "bandwidth matters" `Quick link_bandwidth_matters;
          Alcotest.test_case "accessors match counters" `Quick link_accessors_match_counters;
        ] );
      ( "faulty-link",
        [
          Alcotest.test_case "loss retransmits and costs time" `Quick link_lossy_retransmits;
          Alcotest.test_case "seeded loss is deterministic" `Quick link_lossy_deterministic;
          Alcotest.test_case "corruption counted separately" `Quick
            link_corruption_counted_separately;
          Alcotest.test_case "dups counted, free" `Quick link_dups_cost_nothing_but_counted;
          Alcotest.test_case "outage raises Link_down" `Quick link_outage_raises_link_down;
          Alcotest.test_case "heavy loss exhausts ARQ" `Quick link_heavy_loss_eventually_down;
          Alcotest.test_case "degraded-mode hysteresis" `Quick link_degraded_state_machine;
          Alcotest.test_case "jitter keeps FIFO order" `Quick link_jitter_keeps_fifo;
        ] );
      ( "frame",
        [
          Alcotest.test_case "roundtrip" `Quick frame_roundtrip;
          Alcotest.test_case "all kinds" `Quick frame_all_kinds;
          Alcotest.test_case "detects corruption" `Quick frame_detects_corruption;
          Alcotest.test_case "bad magic" `Quick frame_bad_magic;
          Alcotest.test_case "truncated" `Quick frame_truncated;
          Alcotest.test_case "overhead constant" `Quick frame_overhead_accurate;
          Alcotest.test_case "sequence number roundtrip" `Quick frame_seq_roundtrip;
          Alcotest.test_case "default seq is 0" `Quick frame_default_seq_zero;
          Alcotest.test_case "ack frame" `Quick frame_ack;
          Alcotest.test_case "corrupt seq detected" `Quick frame_corrupt_seq_detected;
        ] );
    ]
