(* Lossy-link robustness, end to end: channel faults must change only
   time and energy, never the recorded interaction log; a Link_down
   mid-session must be recovered like a misprediction; and a transient
   fault inside an offloaded poll must not poison the speculation
   history for that site (the bug this PR fixes). *)

module Orchestrate = Grt.Orchestrate
module Drivershim = Grt.Drivershim
module Gpushim = Grt.Gpushim
module Mode = Grt.Mode
module Backend = Grt_driver.Backend
module Mem = Grt_gpu.Mem
module Regs = Grt_gpu.Regs
module Sku = Grt_gpu.Sku
module Sexpr = Grt_util.Sexpr
module Profile = Grt_net.Profile
module Link = Grt_net.Link
module Clock = Grt_sim.Clock
module Counters = Grt_sim.Counters

let check = Alcotest.check

let record ?history ?config ?inject_outage_after ~profile ~mode () =
  Orchestrate.record ?history ?config ?inject_outage_after ~profile ~mode ~sku:Sku.g71_mp8
    ~net:Grt_mlfw.Zoo.mnist ~seed:42L ()

(* Mispredictions escape [finalize] wrapped in [Fun.Finally_raised]. *)
let rec is_mispredict = function
  | Drivershim.Mispredict _ -> true
  | Fun.Finally_raised e -> is_mispredict e
  | _ -> false

(* ---- recordings are bit-identical under loss (tentpole) ---- *)

let lossy_blob_bit_identical_all_modes () =
  let lossy = Profile.degrade ~drop_prob:0.05 Profile.wifi in
  List.iter
    (fun mode ->
      let clean = record ~history:(Drivershim.fresh_history ()) ~profile:Profile.wifi ~mode () in
      let faulty = record ~history:(Drivershim.fresh_history ()) ~profile:lossy ~mode () in
      let label s = Printf.sprintf "%s: %s" (Mode.name mode) s in
      check Alcotest.bool (label "faults were exercised") true
        (faulty.Orchestrate.retransmits > 0);
      check Alcotest.bool (label "blob bit-identical under loss") true
        (Bytes.equal clean.Orchestrate.blob faulty.Orchestrate.blob);
      check Alcotest.bool (label "loss costs time") true
        (faulty.Orchestrate.total_s > clean.Orchestrate.total_s))
    Mode.all

let outage_recovery_bit_identical () =
  let clean = record ~history:(Drivershim.fresh_history ()) ~profile:Profile.wifi
      ~mode:Mode.Ours_mds ()
  in
  let outage =
    record ~history:(Drivershim.fresh_history ()) ~inject_outage_after:40 ~profile:Profile.wifi
      ~mode:Mode.Ours_mds ()
  in
  check Alcotest.bool "link went down once" true (outage.Orchestrate.link_downs >= 1);
  check Alcotest.bool "recovery counted as rollback" true (outage.Orchestrate.rollbacks >= 1);
  check Alcotest.bool "recovery spent time" true (outage.Orchestrate.rollback_s > 0.);
  check Alcotest.bool "recording unaffected by the outage" true
    (Bytes.equal clean.Orchestrate.blob outage.Orchestrate.blob)

(* ---- offloaded-poll speculation history (the fixed bug) ---- *)

(* A minimal shim rig around the canonical §4.3 polling loop: power the
   shader cores on, then offload-poll SHADER_READY until the domain comes
   up. The device answers the poll deterministically with 0xFF, so the
   site becomes history-confident after [spec_history_k] runs. *)
type rig = { shim : Drivershim.t; counters : Counters.t; link : Link.t }

let mk_rig ?link ?counters ~history () =
  let counters = match counters with Some c -> c | None -> Counters.create () in
  let cfg = Mode.default_config Mode.Ours_mds in
  let clock, link =
    match link with
    | Some l -> (Link.clock l, l)
    | None ->
      let clock = Clock.create () in
      (clock, Link.create ~clock ~counters Profile.wifi)
  in
  let gpushim = Gpushim.create ~clock ~sku:Sku.g71_mp8 ~counters ~session_salt:4L ~cfg () in
  Gpushim.isolate gpushim;
  let cloud_mem = Mem.create () in
  let shim = Drivershim.create ~cfg ~link ~gpushim ~cloud_mem ~counters ~history () in
  { shim; counters; link }

let power_on_and_poll r =
  let b = Drivershim.backend r.shim in
  b.Backend.write_reg Regs.shader_pwron_lo (Sexpr.const 0xFFL);
  let res =
    b.Backend.poll_reg ~reg:Regs.shader_ready_lo ~mask:0xFFL ~cond:Backend.Bits_set
      ~max_iters:4000 ~spin_ns:1000L
  in
  Drivershim.finalize r.shim;
  res

let warm_poll_site history =
  (* spec_history_k identical observations make the site confident *)
  for _ = 1 to (Mode.default_config Mode.Ours_mds).Mode.spec_history_k do
    match power_on_and_poll (mk_rig ~history ()) with
    | Backend.Poll_ok _ -> ()
    | Backend.Poll_timeout -> Alcotest.fail "warm-up poll timed out"
  done

let expect_speculated_poll ~msg history =
  let r = mk_rig ~history () in
  (match power_on_and_poll r with
  | Backend.Poll_ok _ -> ()
  | Backend.Poll_timeout -> Alcotest.fail "poll timed out");
  check Alcotest.int (msg ^ ": no sync poll commit") 0
    (Counters.get_int r.counters "commits.sync");
  check Alcotest.bool (msg ^ ": poll was speculated") true
    (Counters.get_int r.counters "commits.speculated" >= 1)

let poll_fault_keeps_history_confident () =
  let history = Drivershim.fresh_history () in
  warm_poll_site history;
  expect_speculated_poll ~msg:"before the fault" history;
  (* Inject the fault into the offloaded poll's validation check: the
     countdown holds through the preceding write-only commit (no reads)
     and lands on the poll observation. *)
  let faulted = mk_rig ~history () in
  Drivershim.inject_fault_after faulted.shim 0;
  (match power_on_and_poll faulted with
  | exception e when is_mispredict e -> ()
  | _ -> Alcotest.fail "injected poll fault was not detected");
  check Alcotest.bool "fault hit a speculated poll" true
    (Counters.get_int faulted.counters "spec.mispredicts" >= 1);
  check Alcotest.int "the faulted poll was speculated, not sync" 0
    (Counters.get_int faulted.counters "commits.sync");
  (* Regression: the history recorded the true observation, not the
     corrupted check value, so the very next run still speculates. With
     the old code the injected value entered the history, the site lost
     confidence, and this fell back to a blocking sync commit. *)
  expect_speculated_poll ~msg:"after the transient fault" history

let poll_timeout_sentinel_not_recorded () =
  let history = Drivershim.fresh_history () in
  warm_poll_site history;
  (* A run whose poll can never succeed: skip the power-on write, so the
     ready register stays 0 and the offloaded poll times out. The
     speculative path returns the (wrong) prediction and the mismatch
     surfaces at finalize. *)
  let r = mk_rig ~history () in
  let b = Drivershim.backend r.shim in
  (match
     b.Backend.poll_reg ~reg:Regs.shader_ready_lo ~mask:0xFFL ~cond:Backend.Bits_set
       ~max_iters:50 ~spin_ns:1000L
   with
  | Backend.Poll_ok _ | Backend.Poll_timeout -> ());
  (match Drivershim.finalize r.shim with
  | () -> Alcotest.fail "timed-out speculated poll was not flagged"
  | exception e when is_mispredict e -> ());
  (* Regression: the -1L timeout sentinel must not enter the history as an
     observation; the site is forgotten instead. The next run therefore
     falls back to a synchronous poll — it must NOT re-speculate the same
     doomed prediction (that livelocks recovery) — and k clean runs
     re-warm the site as from scratch. *)
  let next = mk_rig ~history () in
  (match power_on_and_poll next with
  | Backend.Poll_ok _ -> ()
  | Backend.Poll_timeout -> Alcotest.fail "recovery poll timed out");
  check Alcotest.int "after timeout: poll goes synchronous" 1
    (Counters.get_int next.counters "commits.sync");
  warm_poll_site history;
  expect_speculated_poll ~msg:"re-warmed after the timeout" history

(* ---- degraded mode suppresses speculation ---- *)

let trip_degraded link =
  (* Fill the link's loss window with lossy exchanges until it trips. *)
  let lossy = Profile.degrade ~drop_prob:0.4 Profile.wifi in
  Link.set_profile link lossy;
  (try
     for _ = 1 to 64 do
       Link.round_trip link ~send_bytes:64 ~recv_bytes:64
     done
   with Link.Link_down _ -> ());
  check Alcotest.bool "link tripped into degraded" true (Link.health link = Link.Degraded);
  (* Faults served their purpose; keep the window history but stop
     dropping so the shim's own traffic is clean. *)
  Link.set_profile link Profile.wifi

let degraded_link_suppresses_speculation () =
  let clock = Clock.create () in
  let link_counters = Counters.create () in
  let link = Link.create ~clock ~counters:link_counters ~seed:7L Profile.wifi in
  trip_degraded link;
  (* Default config: degraded_mode = true, so commits go synchronous. *)
  let counters = Counters.create () in
  let r = mk_rig ~link ~counters ~history:(Drivershim.fresh_history ()) () in
  let b = Drivershim.backend r.shim in
  b.Backend.write_reg Regs.shader_pwron_lo (Sexpr.const 0xFFL);
  Drivershim.finalize r.shim;
  check Alcotest.bool "speculation suppressed while degraded" true
    (Counters.get_int counters "spec.degraded_suppressed" >= 1);
  check Alcotest.int "no speculative commits while degraded" 0
    (Counters.get_int counters "commits.speculated");
  check Alcotest.bool "commits went synchronous" true
    (Counters.get_int counters "commits.sync" >= 1);
  (* Opting out (degraded_mode = false) keeps speculating on the same
     degraded link. *)
  check Alcotest.bool "link still degraded" true (Link.health link = Link.Degraded);
  let counters2 = Counters.create () in
  let cfg = { (Mode.default_config Mode.Ours_mds) with Mode.degraded_mode = false } in
  let gpushim =
    Gpushim.create ~clock:(Link.clock link) ~sku:Sku.g71_mp8 ~counters:counters2
      ~session_salt:4L ~cfg ()
  in
  Gpushim.isolate gpushim;
  let shim =
    Drivershim.create ~cfg ~link ~gpushim ~cloud_mem:(Mem.create ()) ~counters:counters2
      ~history:(Drivershim.fresh_history ()) ()
  in
  let b2 = Drivershim.backend shim in
  b2.Backend.write_reg Regs.shader_pwron_lo (Sexpr.const 0xFFL);
  Drivershim.finalize shim;
  check Alcotest.int "policy off: nothing suppressed" 0
    (Counters.get_int counters2 "spec.degraded_suppressed");
  check Alcotest.bool "policy off: write-only commit still speculated" true
    (Counters.get_int counters2 "commits.speculated" >= 1)

let () =
  Alcotest.run "faultlink"
    [
      ( "history",
        [
          Alcotest.test_case "poll fault keeps history confident" `Quick
            poll_fault_keeps_history_confident;
          Alcotest.test_case "poll timeout sentinel not recorded" `Quick
            poll_timeout_sentinel_not_recorded;
        ] );
      ( "degraded",
        [
          Alcotest.test_case "degraded link suppresses speculation" `Quick
            degraded_link_suppresses_speculation;
        ] );
      ( "differential",
        [
          Alcotest.test_case "lossy blob bit-identical (all modes)" `Slow
            lossy_blob_bit_identical_all_modes;
          Alcotest.test_case "outage recovery bit-identical" `Slow
            outage_recovery_bit_identical;
        ] );
    ]
