(* Differential suite for the flat page store and MMU (ROADMAP item 5's
   safety net): the dense-array Mem and the walker-table Mmu must be
   observationally identical to the retained Hashtbl oracle
   (Mem_reference / an in-test mapping model) under ANY access script.

   Random scripts mix every public entry point — byte/word/bulk accessors,
   page install/borrow, protect/unprotect, snapshot/restore, allocation —
   over a PFN pool that straddles the dense/spill boundary (so both
   representations and the dense→spill page-crossing paths are exercised).
   On top of the byte-for-byte agreement, the suite checks the generation
   contract the oracle does not model:
   - [write_gen] never decreases; per-page stamps never decrease;
   - a page whose stamp has not advanced since an observer last looked
     holds identical bytes (the memsync skip guarantee) — which forces
     [restore] to restamp every page it touches. *)

module Mem = Grt_gpu.Mem
module Mmu = Grt_gpu.Mmu
module Sku = Grt_gpu.Sku
module Ref = Mem_reference

let check = Alcotest.check

(* ---- random access scripts ---- *)

(* Dense low, dense around the growth boundary (initial cap 1024), the last
   dense PFN, and spill. 0xFFFF straddles into 0x10000 on page-crossing
   accesses, covering the dense→spill seam. *)
let pool =
  [| 0x100; 0x101; 0x102; 0x3FF; 0x400; 0x401; 0x1000; 0xFFFF; 0x10000; 0x10001; 0x100000 |]

type op =
  | Wu8 of int * int * int (* pool idx, offset, value *)
  | Wu32 of int * int * int64
  | Wu64 of int * int * int64
  | Ru8 of int * int
  | Ru32 of int * int
  | Ru64 of int * int
  | Wbytes of int * int * int (* pool idx, offset, length (content from seed) *)
  | Rbytes of int * int * int
  | Wf32s of int * int * int (* pool idx, offset (any alignment), count *)
  | Rf32s of int * int * int
  | Set_page of int * int (* pool idx, fill seed *)
  | Get_page of int
  | Borrow_poke of int * int * int (* page_rw + in-place byte write *)
  | Alloc of int
  | Protect of int list (* pool idxs *)
  | Unprotect
  | Clear_dirty
  | Snapshot
  | Restore
  | Audit

let gen_op : op QCheck2.Gen.t =
  let open QCheck2.Gen in
  let idx = int_bound (Array.length pool - 1) in
  (* Bias offsets toward the tail so multi-byte accesses straddle pages. *)
  let off = frequency [ (3, int_bound 4095); (1, int_range 4088 4095) ] in
  let v64 =
    let* lo = int_bound 0xFFFFFF and* hi = int_bound 0xFFFFFF in
    return (Int64.logor (Int64.of_int lo) (Int64.shift_left (Int64.of_int hi) 28))
  in
  frequency
    [
      (4, map3 (fun i o v -> Wu8 (i, o, v)) idx off (int_bound 0xFF));
      (4, map3 (fun i o v -> Wu32 (i, o, v)) idx off v64);
      (3, map3 (fun i o v -> Wu64 (i, o, v)) idx off v64);
      (3, map2 (fun i o -> Ru8 (i, o)) idx off);
      (3, map2 (fun i o -> Ru32 (i, o)) idx off);
      (3, map2 (fun i o -> Ru64 (i, o)) idx off);
      (2, map3 (fun i o n -> Wbytes (i, o, n)) idx off (int_range 1 9000));
      (2, map3 (fun i o n -> Rbytes (i, o, n)) idx off (int_range 1 9000));
      (2, map3 (fun i o n -> Wf32s (i, o, n)) idx off (int_range 1 40));
      (2, map3 (fun i o n -> Rf32s (i, o, n)) idx off (int_range 1 40));
      (2, map2 (fun i s -> Set_page (i, s)) idx (int_bound 0xFF));
      (2, map (fun i -> Get_page i) idx);
      (2, map3 (fun i o v -> Borrow_poke (i, o, v)) idx (int_bound 4095) (int_bound 0xFF));
      (1, map (fun n -> Alloc (1 + n)) (int_bound 7));
      (2, map (fun is -> Protect is) (list_size (int_range 1 4) idx));
      (1, return Unprotect);
      (1, return Clear_dirty);
      (1, return Snapshot);
      (1, return Restore);
      (2, return Audit);
    ]

let gen_script = QCheck2.Gen.(list_size (int_range 5 60) gen_op)

let print_op = function
  | Wu8 (i, o, v) -> Printf.sprintf "Wu8(%#x,%#x,%#x)" pool.(i) o v
  | Wu32 (i, o, v) -> Printf.sprintf "Wu32(%#x,%#x,%Lx)" pool.(i) o v
  | Wu64 (i, o, v) -> Printf.sprintf "Wu64(%#x,%#x,%Lx)" pool.(i) o v
  | Ru8 (i, o) -> Printf.sprintf "Ru8(%#x,%#x)" pool.(i) o
  | Ru32 (i, o) -> Printf.sprintf "Ru32(%#x,%#x)" pool.(i) o
  | Ru64 (i, o) -> Printf.sprintf "Ru64(%#x,%#x)" pool.(i) o
  | Wbytes (i, o, n) -> Printf.sprintf "Wbytes(%#x,%#x,%d)" pool.(i) o n
  | Rbytes (i, o, n) -> Printf.sprintf "Rbytes(%#x,%#x,%d)" pool.(i) o n
  | Wf32s (i, o, n) -> Printf.sprintf "Wf32s(%#x,%#x,%d)" pool.(i) o n
  | Rf32s (i, o, n) -> Printf.sprintf "Rf32s(%#x,%#x,%d)" pool.(i) o n
  | Set_page (i, s) -> Printf.sprintf "Set_page(%#x,%d)" pool.(i) s
  | Get_page i -> Printf.sprintf "Get_page(%#x)" pool.(i)
  | Borrow_poke (i, o, v) -> Printf.sprintf "Borrow_poke(%#x,%#x,%#x)" pool.(i) o v
  | Alloc n -> Printf.sprintf "Alloc(%d)" n
  | Protect is -> Printf.sprintf "Protect(%s)" (String.concat "," (List.map (fun i -> Printf.sprintf "%#x" pool.(i)) is))
  | Unprotect -> "Unprotect"
  | Clear_dirty -> "Clear_dirty"
  | Snapshot -> "Snapshot"
  | Restore -> "Restore"
  | Audit -> "Audit"

let print_script ops = String.concat "; " (List.map print_op ops)

exception Mismatch of string

let fail_op op what = raise (Mismatch (Printf.sprintf "%s: %s" (print_op op) what))

let addr_of i off = Int64.add (Int64.shift_left (Int64.of_int pool.(i)) 12) (Int64.of_int off)

let fill_bytes seed n = Bytes.init n (fun i -> Char.chr ((seed + i) land 0xFF))
let fill_floats seed n = Array.init n (fun i -> float_of_int ((seed + i) mod 1000) *. 0.5)

(* Run [f] on both sides and demand agreement on the result AND on whether
   a protected-page trap fired (partial writes before the trap are then
   compared by the next audit). *)
let both op fm fr eq show =
  let run f wrap =
    match f () with
    | v -> Ok v
    | exception Mem.Protected_page_write p when wrap -> Error p
    | exception Ref.Protected p when not wrap -> Error p
  in
  match (run fm true, run fr false) with
  | Ok a, Ok b -> if not (eq a b) then fail_op op (Printf.sprintf "value: flat %s vs ref %s" (show a) (show b))
  | Error a, Error b ->
    if a <> b then fail_op op (Printf.sprintf "trap pfn: flat %Lx vs ref %Lx" a b)
  | Ok _, Error p -> fail_op op (Printf.sprintf "ref trapped on %Lx, flat did not" p)
  | Error p, Ok _ -> fail_op op (Printf.sprintf "flat trapped on %Lx, ref did not" p)

let eq_unit () () = true
let show_unit () = "()"
let show_i64 = Printf.sprintf "%Ld"
let show_list l = String.concat "," (List.map show_i64 l)

let audit op mem rf observed =
  let cmp what a b =
    if a <> b then
      fail_op op (Printf.sprintf "%s: flat [%s] vs ref [%s]" what (show_list a) (show_list b))
  in
  cmp "materialized" (Mem.materialized_pages mem) (Ref.materialized_pages rf);
  cmp "dirty" (Mem.dirty_pages mem) (Ref.dirty_pages rf);
  cmp "protected" (Mem.protected_pfns mem) (Ref.protected_pfns rf);
  if Mem.dirty_bytes mem <> Ref.dirty_bytes rf then
    fail_op op (Printf.sprintf "dirty_bytes: %d vs %d" (Mem.dirty_bytes mem) (Ref.dirty_bytes rf));
  Array.iter
    (fun pfn ->
      let pfn64 = Int64.of_int pfn in
      let page = Mem.get_page mem pfn64 in
      if not (Bytes.equal page (Ref.get_page rf pfn64)) then
        fail_op op (Printf.sprintf "page %#x contents diverge" pfn);
      (* Generation contract: stamps never decrease, and an unchanged stamp
         guarantees unchanged bytes — across every mutation path including
         restore (which must therefore restamp what it touches). *)
      let g = Mem.page_gen mem pfn64 in
      (match Hashtbl.find_opt observed pfn with
      | Some (g0, b0) ->
        if g < g0 then fail_op op (Printf.sprintf "page %#x gen moved backwards" pfn);
        if g = g0 && not (Bytes.equal page b0) then
          fail_op op (Printf.sprintf "page %#x changed under an unchanged stamp %Ld" pfn g)
      | None -> ());
      Hashtbl.replace observed pfn (g, page))
    pool

let run_script ops =
  let mem = Mem.create () in
  let rf = Ref.create () in
  let snaps = ref [] in
  let observed : (int, int64 * bytes) Hashtbl.t = Hashtbl.create 16 in
  let last_wg = ref (-1L) in
  List.iter
    (fun op ->
      (match op with
      | Wu8 (i, o, v) ->
        both op (fun () -> Mem.write_u8 mem (addr_of i o) v) (fun () -> Ref.write_u8 rf (addr_of i o) v) eq_unit show_unit
      | Wu32 (i, o, v) ->
        both op (fun () -> Mem.write_u32 mem (addr_of i o) v) (fun () -> Ref.write_u32 rf (addr_of i o) v) eq_unit show_unit
      | Wu64 (i, o, v) ->
        both op (fun () -> Mem.write_u64 mem (addr_of i o) v) (fun () -> Ref.write_u64 rf (addr_of i o) v) eq_unit show_unit
      | Ru8 (i, o) ->
        both op (fun () -> Mem.read_u8 mem (addr_of i o)) (fun () -> Ref.read_u8 rf (addr_of i o)) ( = ) string_of_int
      | Ru32 (i, o) ->
        both op (fun () -> Mem.read_u32 mem (addr_of i o)) (fun () -> Ref.read_u32 rf (addr_of i o)) Int64.equal show_i64
      | Ru64 (i, o) ->
        both op (fun () -> Mem.read_u64 mem (addr_of i o)) (fun () -> Ref.read_u64 rf (addr_of i o)) Int64.equal show_i64
      | Wbytes (i, o, n) ->
        let b = fill_bytes (o + n) n in
        both op (fun () -> Mem.write_bytes mem (addr_of i o) b) (fun () -> Ref.write_bytes rf (addr_of i o) b) eq_unit show_unit
      | Rbytes (i, o, n) ->
        both op (fun () -> Mem.read_bytes mem (addr_of i o) n) (fun () -> Ref.read_bytes rf (addr_of i o) n) Bytes.equal Bytes.to_string
      | Wf32s (i, o, n) ->
        let vs = fill_floats (o + n) n in
        both op
          (fun () -> Mem.write_f32_array mem (addr_of i o) vs)
          (fun () -> Ref.write_f32_array rf (addr_of i o) vs)
          eq_unit show_unit
      | Rf32s (i, o, n) ->
        (* Compare bit patterns: random page bytes decode to NaNs, where
           float equality would lie. Both sides take the identical
           [Int32.float_of_bits] path, so bits must agree exactly. *)
        let bits a = Array.map Int32.bits_of_float a in
        both op
          (fun () -> bits (Mem.read_f32_array mem (addr_of i o) n))
          (fun () -> bits (Ref.read_f32_array rf (addr_of i o) n))
          ( = )
          (fun a -> String.concat "," (Array.to_list (Array.map (Printf.sprintf "%lx") a)))
      | Set_page (i, s) ->
        let b = fill_bytes s 4096 in
        let pfn = Int64.of_int pool.(i) in
        both op (fun () -> Mem.set_page mem pfn b) (fun () -> Ref.set_page rf pfn b) eq_unit show_unit
      | Get_page i ->
        let pfn = Int64.of_int pool.(i) in
        both op (fun () -> Mem.get_page mem pfn) (fun () -> Ref.get_page rf pfn) Bytes.equal Bytes.to_string
      | Borrow_poke (i, o, v) ->
        let pfn = Int64.of_int pool.(i) in
        both op
          (fun () -> Bytes.set (Mem.page_rw mem pfn) o (Char.chr v))
          (fun () -> Bytes.set (Ref.page_rw rf pfn) o (Char.chr v))
          eq_unit show_unit
      | Alloc n ->
        both op (fun () -> Mem.alloc_pages mem n) (fun () -> Ref.alloc_pages rf n) Int64.equal show_i64
      | Protect is ->
        let pfns = List.map (fun i -> Int64.of_int pool.(i)) is in
        both op (fun () -> Mem.protect_pages mem pfns) (fun () -> Ref.protect_pages rf pfns) eq_unit show_unit
      | Unprotect ->
        both op (fun () -> Mem.unprotect_all mem) (fun () -> Ref.unprotect_all rf) eq_unit show_unit
      | Clear_dirty ->
        both op (fun () -> Mem.clear_dirty mem) (fun () -> Ref.clear_dirty rf) eq_unit show_unit
      | Snapshot -> snaps := (Mem.snapshot mem, Ref.snapshot rf) :: !snaps
      | Restore -> (
        match !snaps with
        | [] -> ()
        | (sm, sr) :: rest ->
          snaps := rest;
          Mem.restore mem sm;
          Ref.restore rf sr)
      | Audit -> audit op mem rf observed);
      let wg = Mem.write_gen mem in
      if wg < !last_wg then fail_op op "write_gen moved backwards";
      last_wg := wg)
    ops;
  audit Audit mem rf observed

let mem_differential =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:350 ~name:"flat Mem == Hashtbl oracle (350 scripts)"
       ~print:print_script gen_script (fun ops ->
         match run_script ops with
         | () -> true
         | exception Mismatch msg ->
           QCheck2.Test.fail_report msg))

(* ---- MMU differential: the table walker against a region-granular model ---- *)

(* Reference granularity is one L2 slot (a 2 MiB region): either a block
   mapping or a 512-entry leaf table — which is exactly the state space the
   walker's L2 descriptor can encode, including the documented overwrite
   semantics (a block replacing a table drops the whole table; mapping a
   page into a block region shatters the block). *)
type region = Block of int64 * Mmu.flags | Table of (int64 * Mmu.flags) option array

type mop =
  | Map_page of int * int * int * int (* region idx, slot, pa seed, flags idx *)
  | Map_block of int * int * int
  | Unmap of int * int
  | Translate of int * int * int (* region idx, slot, access idx *)

let regions = [| (0, 0); (0, 1); (0, 2); (1, 0); (1, 511); (511, 511) |]
let slots = [| 0; 1; 2; 7; 255; 511 |]

let flag_choices =
  [|
    Mmu.rw_data;
    Mmu.ro_data;
    Mmu.rx_code;
    { Mmu.writable = true; executable = true; cacheable = false };
  |]

let accesses = [| `Read; `Write; `Exec |]

let gen_mop : mop QCheck2.Gen.t =
  let open QCheck2.Gen in
  let reg = int_bound (Array.length regions - 1) in
  let slot = int_bound (Array.length slots - 1) in
  frequency
    [
      (5, map3 (fun r s (p, f) -> Map_page (r, s, p, f)) reg slot (pair (int_bound 0xFFFF) (int_bound 3)));
      (2, map3 (fun r p f -> Map_block (r, p, f)) reg (int_bound 0xFF) (int_bound 3));
      (3, map2 (fun r s -> Unmap (r, s)) reg slot);
      (5, map3 (fun r s a -> Translate (r, s, a)) reg slot (int_bound 2));
    ]

let gen_mmu_script =
  QCheck2.Gen.(pair (oneofa [| Sku.Lpae_v7; Sku.Lpae_v8 |]) (list_size (int_range 4 40) gen_mop))

let print_mop = function
  | Map_page (r, s, p, f) -> Printf.sprintf "Map_page(r%d,s%d,%#x,f%d)" r s p f
  | Map_block (r, p, f) -> Printf.sprintf "Map_block(r%d,%#x,f%d)" r p f
  | Unmap (r, s) -> Printf.sprintf "Unmap(r%d,s%d)" r s
  | Translate (r, s, a) -> Printf.sprintf "Translate(r%d,s%d,a%d)" r s a

let print_mmu_script (fmt, ops) =
  Printf.sprintf "%s: %s"
    (match fmt with Sku.Lpae_v7 -> "v7" | Sku.Lpae_v8 -> "v8")
    (String.concat "; " (List.map print_mop ops))

let va_of r s =
  let i1, i2 = regions.(r) in
  Int64.logor
    (Int64.shift_left (Int64.of_int i1) 30)
    (Int64.logor (Int64.shift_left (Int64.of_int i2) 21) (Int64.shift_left (Int64.of_int slots.(s)) 12))

let page_pa seed = Int64.shift_left (Int64.of_int (seed land 0xFFFF)) 12
let block_pa seed = Int64.shift_left (Int64.of_int (seed land 0xFF)) 21

let ref_perm (fl : Mmu.flags) access =
  match access with
  | `Read -> Ok ()
  | `Write -> if fl.Mmu.writable then Ok () else Error (Mmu.Permission "write")
  | `Exec -> if fl.Mmu.executable then Ok () else Error (Mmu.Permission "exec")

let ref_translate model r s access =
  let va = va_of r s in
  match Hashtbl.find_opt model regions.(r) with
  | None -> Error Mmu.Unmapped
  | Some (Block (pa, fl)) -> (
    match ref_perm fl access with
    | Error _ as e -> e
    | Ok () -> Ok (Int64.logor pa (Int64.logand va 0x1F_FFFFL)))
  | Some (Table arr) -> (
    match arr.(slots.(s)) with
    | None -> Error Mmu.Unmapped
    | Some (pa, fl) -> (
      match ref_perm fl access with
      | Error _ as e -> e
      | Ok () -> Ok (Int64.logor pa (Int64.logand va 0xFFFL))))

(* Reference mapped_spans: leaves sorted by VA, contiguous identical-flag
   runs coalesced — the walker's documented output shape. *)
let ref_spans model =
  let leaves = ref [] in
  Hashtbl.iter
    (fun (i1, i2) state ->
      let va2 =
        Int64.logor (Int64.shift_left (Int64.of_int i1) 30) (Int64.shift_left (Int64.of_int i2) 21)
      in
      match state with
      | Block (_, fl) -> leaves := (va2, 1 lsl 21, fl) :: !leaves
      | Table arr ->
        Array.iteri
          (fun idx e ->
            match e with
            | None -> ()
            | Some (_, fl) ->
              leaves := (Int64.logor va2 (Int64.shift_left (Int64.of_int idx) 12), 4096, fl) :: !leaves)
          arr)
    model;
  let sorted = List.sort (fun (a, _, _) (b, _, _) -> Int64.compare a b) !leaves in
  let rec merge = function
    | (va1, len1, f1) :: (va2, len2, f2) :: rest
      when Int64.add va1 (Int64.of_int len1) = va2 && f1 = f2 ->
      merge ((va1, len1 + len2, f1) :: rest)
    | x :: rest -> x :: merge rest
    | [] -> []
  in
  merge sorted

let show_result = function
  | Ok pa -> Printf.sprintf "Ok %Lx" pa
  | Error f -> Format.asprintf "Error %a" Mmu.pp_fault f

let run_mmu_script (fmt, ops) =
  let mem = Mem.create () in
  let mmu = Mmu.create mem ~fmt in
  let model : (int * int, region) Hashtbl.t = Hashtbl.create 8 in
  let table_of r =
    match Hashtbl.find_opt model regions.(r) with
    | Some (Table arr) -> arr
    | _ ->
      let arr = Array.make 512 None in
      Hashtbl.replace model regions.(r) (Table arr);
      arr
  in
  List.iter
    (fun op ->
      match op with
      | Map_page (r, s, seed, f) ->
        let fl = flag_choices.(f) in
        Mmu.map_page mmu ~va:(va_of r s) ~pa:(page_pa seed) ~flags:fl;
        (table_of r).(slots.(s)) <- Some (page_pa seed, fl)
      | Map_block (r, seed, f) ->
        let fl = flag_choices.(f) in
        let i1, i2 = regions.(r) in
        let va = Int64.logor (Int64.shift_left (Int64.of_int i1) 30) (Int64.shift_left (Int64.of_int i2) 21) in
        Mmu.map_block mmu ~va ~pa:(block_pa seed) ~flags:fl;
        Hashtbl.replace model regions.(r) (Block (block_pa seed, fl))
      | Unmap (r, s) -> (
        Mmu.unmap_page mmu ~va:(va_of r s);
        match Hashtbl.find_opt model regions.(r) with
        | Some (Block _) -> Hashtbl.remove model regions.(r)
        | Some (Table arr) -> arr.(slots.(s)) <- None
        | None -> ())
      | Translate (r, s, a) ->
        let access = accesses.(a) in
        let got = Mmu.translate mmu ~va:(va_of r s) ~access in
        let want = ref_translate model r s access in
        if got <> want then
          raise
            (Mismatch
               (Printf.sprintf "%s: flat %s vs ref %s" (print_mop op) (show_result got)
                  (show_result want))))
    ops;
  (* Closing audit: every region/slot translates identically under every
     access kind; the table-page walk is duplicate-free, covers exactly
     [table_pages], and only names materialized pages; mapped_spans match
     the model's coalesced leaves. *)
  Array.iteri
    (fun r _ ->
      Array.iteri
        (fun s _ ->
          List.iter
            (fun a ->
              let ai = match a with `Read -> 0 | `Write -> 1 | `Exec -> 2 in
              let got = Mmu.translate mmu ~va:(va_of r s) ~access:a in
              let want = ref_translate model r s a in
              if got <> want then
                raise
                  (Mismatch
                     (Printf.sprintf "final %s: flat %s vs ref %s"
                        (print_mop (Translate (r, s, ai)))
                        (show_result got) (show_result want))))
            [ `Read; `Write; `Exec ])
        slots)
    regions;
  let walked = ref [] in
  Mmu.iter_table_pfns mmu (fun pfn -> walked := Int64.of_int pfn :: !walked);
  let walked = List.rev !walked in
  let uniq = List.sort_uniq Int64.compare walked in
  if List.length uniq <> List.length walked then raise (Mismatch "iter_table_pfns revisited a table");
  if uniq <> Mmu.table_pages mmu then raise (Mismatch "iter_table_pfns disagrees with table_pages");
  List.iter
    (fun pfn ->
      if Mem.page_ro mem pfn = None then
        raise (Mismatch (Printf.sprintf "table page %Lx not materialized" pfn)))
    uniq;
  if Mmu.mapped_spans mmu <> ref_spans model then raise (Mismatch "mapped_spans diverge")

let mmu_differential =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:300 ~name:"flat Mmu == mapping model (300 scripts)"
       ~print:print_mmu_script gen_mmu_script (fun script ->
         match run_mmu_script script with
         | () -> true
         | exception Mismatch msg -> QCheck2.Test.fail_report msg))

(* ---- targeted unit tests ---- *)

(* protected_pfns materializes sorted regardless of protect order, across
   the dense/spill boundary, with the memoized list invalidated by further
   protects and cleared by unprotect_all. *)
let protected_ordering () =
  let mem = Mem.create () in
  Mem.protect_pages mem [ 0x10001L; 0x3FFL; 0x100L ];
  check (Alcotest.list Alcotest.int64) "sorted across dense/spill" [ 0x100L; 0x3FFL; 0x10001L ]
    (Mem.protected_pfns mem);
  (* Second call returns the memoized list, still sorted. *)
  check (Alcotest.list Alcotest.int64) "memoized read stable" [ 0x100L; 0x3FFL; 0x10001L ]
    (Mem.protected_pfns mem);
  Mem.protect_pages mem [ 0x200L; 0x10000L ];
  check (Alcotest.list Alcotest.int64) "invalidated and re-sorted"
    [ 0x100L; 0x200L; 0x3FFL; 0x10000L; 0x10001L ]
    (Mem.protected_pfns mem);
  (* Duplicate protects do not duplicate entries. *)
  Mem.protect_pages mem [ 0x200L; 0x200L ];
  check (Alcotest.list Alcotest.int64) "idempotent"
    [ 0x100L; 0x200L; 0x3FFL; 0x10000L; 0x10001L ]
    (Mem.protected_pfns mem);
  Mem.unprotect_all mem;
  check (Alcotest.list Alcotest.int64) "unprotect_all empties" [] (Mem.protected_pfns mem);
  (* The store is writable again everywhere that was protected. *)
  Mem.write_u8 mem (Int64.shift_left 0x200L 12) 7;
  check Alcotest.int "write lands after unprotect" 7 (Mem.read_u8 mem (Int64.shift_left 0x200L 12))

(* restore restamps: an observer that cached a pre-rollback stamp must see
   the stamp advance, both for pages the rollback rewrote and for pages it
   dropped entirely. *)
let restore_restamps () =
  let mem = Mem.create () in
  let a = Int64.shift_left 0x100L 12 and b = Int64.shift_left 0x101L 12 in
  Mem.write_u8 mem a 1;
  let snap = Mem.snapshot mem in
  let ga = Mem.page_gen mem 0x100L in
  Mem.write_u8 mem a 2;
  Mem.write_u8 mem b 3 (* b exists only after the snapshot *);
  let ga' = Mem.page_gen mem 0x100L and gb' = Mem.page_gen mem 0x101L in
  Mem.restore mem snap;
  check Alcotest.int "a rolled back" 1 (Mem.read_u8 mem a);
  check Alcotest.int "b dropped" 0 (Mem.read_u8 mem b);
  check Alcotest.bool "a restamped past its pre-snapshot stamp" true (Mem.page_gen mem 0x100L > ga);
  check Alcotest.bool "a restamped past its pre-rollback stamp" true (Mem.page_gen mem 0x100L > ga');
  check Alcotest.bool "dropped b restamped" true (Mem.page_gen mem 0x101L > gb')

let gen_monotone () =
  let mem = Mem.create () in
  let addr = Int64.shift_left 0x100L 12 in
  let prev = ref (Mem.write_gen mem) in
  for i = 0 to 99 do
    Mem.write_u8 mem (Int64.add addr (Int64.of_int (i mod 4096))) i;
    let g = Mem.write_gen mem in
    check Alcotest.bool "write_gen strictly advances on writes" true (g > !prev);
    prev := g
  done;
  ignore (Mem.read_u64 mem addr);
  ignore (Mem.dirty_pages mem);
  check Alcotest.bool "reads do not stamp" true (Mem.write_gen mem = !prev)

let () =
  Alcotest.run "mem_flat"
    [
      ("differential", [ mem_differential; mmu_differential ]);
      ( "units",
        [
          Alcotest.test_case "protected_pfns ordering" `Quick protected_ordering;
          Alcotest.test_case "restore restamps" `Quick restore_restamps;
          Alcotest.test_case "write_gen monotone" `Quick gen_monotone;
        ] );
    ]
