(* Tests for the GPU hardware model: register map, SKU catalog, physical
   memory, MMU page tables, shader binaries, job descriptors, compute
   kernels and the device state machine. *)

module Regs = Grt_gpu.Regs
module Sku = Grt_gpu.Sku
module Mem = Grt_gpu.Mem
module Mmu = Grt_gpu.Mmu
module Shader = Grt_gpu.Shader
module Job_desc = Grt_gpu.Job_desc
module Kernels = Grt_gpu.Kernels
module Device = Grt_gpu.Device
module Clock = Grt_sim.Clock

let check = Alcotest.check
let qtest ?(count = 100) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- Regs ---- *)

let regs_names () =
  check Alcotest.string "gpu_id" "GPU_ID" (Regs.name Regs.gpu_id);
  check Alcotest.string "slot reg" "JS0+0x20" (Regs.name (Regs.js_command 0));
  check Alcotest.string "as reg" "AS1+0x18" (Regs.name (Regs.as_command 1));
  check Alcotest.string "js features" "JS5_FEATURES" (Regs.name (Regs.js_features 5))

let regs_disjoint_blocks () =
  (* No register offset may be shared between blocks. *)
  let all =
    [
      Regs.gpu_id; Regs.gpu_command; Regs.latest_flush_id; Regs.shader_present_lo;
      Regs.shader_config; Regs.job_irq_rawstat; Regs.js_command 0; Regs.js_command 1;
      Regs.mmu_irq_rawstat; Regs.as_command 0; Regs.as_command 7; Regs.prfcnt_config;
      Regs.js_features 0; Regs.js_features 15; Regs.texture_features 3;
    ]
  in
  let sorted = List.sort_uniq compare all in
  check Alcotest.int "all distinct" (List.length all) (List.length sorted)

let regs_nondet () =
  check Alcotest.bool "flush id is nondet" true (Regs.is_nondeterministic Regs.latest_flush_id);
  check Alcotest.bool "gpu id is det" false (Regs.is_nondeterministic Regs.gpu_id)

let regs_bounds () =
  Alcotest.check_raises "slot bound" (Invalid_argument "Regs.js_base") (fun () ->
      ignore (Regs.js_command 3));
  Alcotest.check_raises "as bound" (Invalid_argument "Regs.as_base") (fun () ->
      ignore (Regs.as_command 8))

(* ---- Sku ---- *)

let sku_catalog () =
  check Alcotest.int "five SKUs" 5 (List.length Sku.all);
  check Alcotest.bool "find works" true (Sku.find "Mali-G71 MP8" = Some Sku.g71_mp8);
  check Alcotest.bool "find_by_id works" true
    (Sku.find_by_id Sku.g71_mp8.Sku.gpu_id = Some Sku.g71_mp8);
  check Alcotest.bool "unknown id" true (Sku.find_by_id 0xDEADL = None)

let sku_masks () =
  check Alcotest.int64 "g71 has 8 cores" 0xFFL (Sku.shader_present_mask Sku.g71_mp8);
  check Alcotest.int64 "g31 has 2 cores" 0x3L (Sku.shader_present_mask Sku.g31_mp2);
  check Alcotest.int64 "g71 l2" 0x3L (Sku.l2_present_mask Sku.g71_mp8)

let sku_ids_unique () =
  let ids = List.map (fun s -> s.Sku.gpu_id) Sku.all in
  check Alcotest.int "unique ids" (List.length ids) (List.length (List.sort_uniq compare ids))

let sku_throughput_ordering () =
  check Alcotest.bool "G76 > G71" true (Sku.flops_per_s Sku.g76_mp12 > Sku.flops_per_s Sku.g71_mp8);
  check Alcotest.bool "G31 < G71" true (Sku.flops_per_s Sku.g31_mp2 < Sku.flops_per_s Sku.g71_mp8)

(* ---- Mem ---- *)

let mem_rw () =
  let m = Mem.create () in
  let pa = Mem.alloc_pages m 2 in
  Mem.write_u32 m pa 0xDEADBEEFL;
  Mem.write_u64 m (Int64.add pa 8L) 0x1122334455667788L;
  Mem.write_f32 m (Int64.add pa 16L) 3.25;
  check Alcotest.int64 "u32" 0xDEADBEEFL (Mem.read_u32 m pa);
  check Alcotest.int64 "u64" 0x1122334455667788L (Mem.read_u64 m (Int64.add pa 8L));
  check (Alcotest.float 1e-9) "f32" 3.25 (Mem.read_f32 m (Int64.add pa 16L))

let mem_unmapped_reads_zero () =
  let m = Mem.create () in
  check Alcotest.int64 "zero" 0L (Mem.read_u64 m 0x7777_0000L)

let mem_page_boundary_straddle () =
  let m = Mem.create () in
  let pa = Mem.alloc_pages m 2 in
  let addr = Int64.add pa (Int64.of_int (Mem.page_size - 2)) in
  Mem.write_u32 m addr 0xCAFEBABEL;
  check Alcotest.int64 "straddling u32" 0xCAFEBABEL (Mem.read_u32 m addr)

let mem_alloc_distinct () =
  let m = Mem.create () in
  let a = Mem.alloc_pages m 3 in
  let b = Mem.alloc_pages m 1 in
  check Alcotest.bool "non-overlapping" true
    (Int64.compare b (Int64.add a (Int64.of_int (3 * Mem.page_size))) >= 0)

let mem_dirty_tracking () =
  let m = Mem.create () in
  let pa = Mem.alloc_pages m 4 in
  Mem.write_u8 m pa 1;
  Mem.write_u8 m (Int64.add pa (Int64.of_int Mem.page_size)) 1;
  check Alcotest.int "two dirty pages" 2 (List.length (Mem.dirty_pages m));
  check Alcotest.int "dirty bytes" (2 * Mem.page_size) (Mem.dirty_bytes m);
  Mem.clear_dirty m;
  check Alcotest.int "cleared" 0 (List.length (Mem.dirty_pages m));
  ignore (Mem.read_u8 m pa);
  check Alcotest.int "reads do not dirty" 0 (List.length (Mem.dirty_pages m))

let mem_get_set_page () =
  let m = Mem.create () in
  let page = Bytes.make Mem.page_size 'x' in
  Mem.set_page m 0x40L page;
  check Alcotest.bytes "roundtrip" page (Mem.get_page m 0x40L);
  check Alcotest.bytes "missing page is zeroes" (Bytes.make Mem.page_size '\000')
    (Mem.get_page m 0x9999L);
  Alcotest.check_raises "size checked" (Invalid_argument "Mem.set_page: wrong size") (fun () ->
      Mem.set_page m 0x41L (Bytes.create 7))

let mem_snapshot_restore () =
  let m = Mem.create () in
  let pa = Mem.alloc_pages m 1 in
  Mem.write_u32 m pa 1L;
  let snap = Mem.snapshot m in
  Mem.write_u32 m pa 2L;
  ignore (Mem.alloc_pages m 5);
  Mem.restore m snap;
  check Alcotest.int64 "content restored" 1L (Mem.read_u32 m pa);
  let pa2 = Mem.alloc_pages m 1 in
  check Alcotest.int64 "allocator restored" (Int64.add pa (Int64.of_int Mem.page_size)) pa2

let mem_qcheck_rw =
  qtest "u32 write/read roundtrips at arbitrary offsets"
    QCheck2.Gen.(pair (int_bound 8000) (map Int64.of_int (int_bound 0xFFFF)))
    (fun (off, v) ->
      let m = Mem.create () in
      let pa = Mem.alloc_pages m 3 in
      let addr = Int64.add pa (Int64.of_int off) in
      Mem.write_u32 m addr v;
      Int64.equal (Mem.read_u32 m addr) v)

(* ---- Mmu ---- *)

let mmu_map_translate () =
  let m = Mem.create () in
  let mmu = Mmu.create m ~fmt:Sku.Lpae_v7 in
  let pa = Mem.alloc_pages m 1 in
  Mmu.map_page mmu ~va:0x10_0000L ~pa ~flags:Mmu.rw_data;
  (match Mmu.translate mmu ~va:0x10_0123L ~access:`Read with
  | Ok got -> check Alcotest.int64 "offset preserved" (Int64.add pa 0x123L) got
  | Error _ -> Alcotest.fail "translate failed");
  match Mmu.translate mmu ~va:0x20_0000L ~access:`Read with
  | Error Mmu.Unmapped -> ()
  | _ -> Alcotest.fail "expected unmapped"

let mmu_permissions () =
  let m = Mem.create () in
  let mmu = Mmu.create m ~fmt:Sku.Lpae_v7 in
  let pa = Mem.alloc_pages m 2 in
  Mmu.map_page mmu ~va:0x1000L ~pa ~flags:Mmu.ro_data;
  Mmu.map_page mmu ~va:0x2000L ~pa:(Int64.add pa 0x1000L) ~flags:Mmu.rx_code;
  (match Mmu.translate mmu ~va:0x1000L ~access:`Write with
  | Error (Mmu.Permission _) -> ()
  | _ -> Alcotest.fail "ro page writable");
  (match Mmu.translate mmu ~va:0x1000L ~access:`Exec with
  | Error (Mmu.Permission _) -> ()
  | _ -> Alcotest.fail "data page executable");
  match Mmu.translate mmu ~va:0x2000L ~access:`Exec with
  | Ok _ -> ()
  | Error _ -> Alcotest.fail "code page must be executable"

let mmu_unmap () =
  let m = Mem.create () in
  let mmu = Mmu.create m ~fmt:Sku.Lpae_v7 in
  let pa = Mem.alloc_pages m 1 in
  Mmu.map_page mmu ~va:0x4000L ~pa ~flags:Mmu.rw_data;
  Mmu.unmap_page mmu ~va:0x4000L;
  match Mmu.translate mmu ~va:0x4000L ~access:`Read with
  | Error Mmu.Unmapped -> ()
  | _ -> Alcotest.fail "expected unmapped after unmap"

let mmu_block_mapping () =
  let m = Mem.create () in
  let mmu = Mmu.create m ~fmt:Sku.Lpae_v7 in
  let block = Int64.of_int (1 lsl 21) in
  Mmu.map_block mmu ~va:block ~pa:(Int64.mul 4L block) ~flags:Mmu.rw_data;
  (match Mmu.translate mmu ~va:(Int64.add block 0x12345L) ~access:`Read with
  | Ok pa -> check Alcotest.int64 "block offset" (Int64.add (Int64.mul 4L block) 0x12345L) pa
  | Error _ -> Alcotest.fail "block translate failed");
  Alcotest.check_raises "misaligned block" (Invalid_argument "Mmu: misaligned va") (fun () ->
      Mmu.map_block mmu ~va:0x1000L ~pa:0L ~flags:Mmu.rw_data)

let mmu_v8_access_flag () =
  let m = Mem.create () in
  (* Build a v7-format table but walk it as v8: entries lack the access
     flag, so a v8 walker must fault. This is one of the SKU differences
     that break cross-SKU replay (§2.4). *)
  let v7 = Mmu.create m ~fmt:Sku.Lpae_v7 in
  let pa = Mem.alloc_pages m 1 in
  Mmu.map_page v7 ~va:0x8000L ~pa ~flags:Mmu.rw_data;
  let as_v8 = Mmu.of_root m ~fmt:Sku.Lpae_v8 ~root:(Mmu.root_pa v7) in
  match Mmu.translate as_v8 ~va:0x8000L ~access:`Read with
  | Error (Mmu.Permission _) -> ()
  | _ -> Alcotest.fail "v8 walker must require the access flag"

let mmu_table_pages () =
  let m = Mem.create () in
  let mmu = Mmu.create m ~fmt:Sku.Lpae_v7 in
  let root_only = Mmu.table_pages mmu in
  check Alcotest.int "root only" 1 (List.length root_only);
  let pa = Mem.alloc_pages m 1 in
  Mmu.map_page mmu ~va:0x10_0000L ~pa ~flags:Mmu.rw_data;
  (* root + one L2 + one L3 *)
  check Alcotest.int "three levels" 3 (List.length (Mmu.table_pages mmu))

let mmu_mapped_spans_coalesce () =
  let m = Mem.create () in
  let mmu = Mmu.create m ~fmt:Sku.Lpae_v7 in
  let pa = Mem.alloc_pages m 4 in
  for i = 0 to 3 do
    let off = Int64.of_int (i * Mem.page_size) in
    Mmu.map_page mmu ~va:(Int64.add 0x30_0000L off) ~pa:(Int64.add pa off) ~flags:Mmu.rw_data
  done;
  match Mmu.mapped_spans mmu with
  | [ (va, len, flags) ] ->
    check Alcotest.int64 "span start" 0x30_0000L va;
    check Alcotest.int "span length" (4 * Mem.page_size) len;
    check Alcotest.bool "span flags" true (flags = Mmu.rw_data)
  | spans -> Alcotest.failf "expected one coalesced span, got %d" (List.length spans)

let mmu_qcheck_translate =
  qtest "mapped pages translate with page-offset identity"
    QCheck2.Gen.(pair (int_range 1 200) (int_bound 4095))
    (fun (page_idx, off) ->
      let m = Mem.create () in
      let mmu = Mmu.create m ~fmt:Sku.Lpae_v8 in
      let pa = Mem.alloc_pages m 1 in
      let va = Int64.of_int (page_idx * Mem.page_size) in
      Mmu.map_page mmu ~va ~pa ~flags:Mmu.rw_data;
      match Mmu.translate mmu ~va:(Int64.add va (Int64.of_int off)) ~access:`Write with
      | Ok got -> Int64.equal got (Int64.add pa (Int64.of_int off))
      | Error _ -> false)

(* ---- Shader ---- *)

let shader_compile_parse () =
  let bin = Shader.compile ~sku:Sku.g71_mp8 ~op:Shader.Conv2d in
  match Shader.parse_header bin with
  | Ok h ->
    check Alcotest.int64 "bound to sku" Sku.g71_mp8.Sku.gpu_id h.Shader.gpu_id;
    check Alcotest.bool "op preserved" true (h.Shader.op = Shader.Conv2d);
    check Alcotest.int "tile from cores" (Shader.tile_size Sku.g71_mp8) h.Shader.tile
  | Error e -> Alcotest.fail e

let shader_deterministic () =
  let a = Shader.compile ~sku:Sku.g52_mp4 ~op:Shader.Fc in
  let b = Shader.compile ~sku:Sku.g52_mp4 ~op:Shader.Fc in
  check Alcotest.bytes "same bits" a b

let shader_sku_specific () =
  let a = Shader.compile ~sku:Sku.g71_mp8 ~op:Shader.Fc in
  let b = Shader.compile ~sku:Sku.g76_mp12 ~op:Shader.Fc in
  check Alcotest.bool "different binaries per SKU" false (Bytes.equal a b)

let shader_op_codes_roundtrip () =
  List.iter
    (fun op ->
      match Shader.op_of_code (Shader.op_code op) with
      | Some op' when op = op' -> ()
      | _ -> Alcotest.failf "op %s does not roundtrip" (Shader.op_name op))
    [
      Shader.Copy; Shader.Relu; Shader.Add; Shader.Concat2; Shader.Softmax; Shader.Maxpool;
      Shader.Avgpool; Shader.Conv2d; Shader.Depthwise; Shader.Fc;
    ]

let shader_rejects_garbage () =
  (match Shader.parse_header (Bytes.create 4) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "short header accepted");
  match Shader.parse_header (Bytes.make 64 'z') with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad magic accepted"

(* ---- Job_desc ---- *)

let job_desc_roundtrip () =
  let m = Mem.create () in
  let pa = Mem.alloc_pages m 1 in
  let d =
    {
      Job_desc.op = Shader.Conv2d;
      shader_va = 0x1234_5678L;
      input_va = 0x1000L;
      input2_va = 0x2000L;
      bias_va = 0x3000L;
      output_va = 0x4000L;
      params =
        {
          Job_desc.default_params with
          Job_desc.in_c = 3;
          in_h = 8;
          in_w = 8;
          out_c = 4;
          out_h = 6;
          out_w = 6;
          kh = 3;
          kw = 3;
          relu = true;
          part_idx = 1;
          part_count = 2;
          flops_hint = 123_456_789L;
        };
      next_va = 0x9000L;
    }
  in
  Job_desc.write m ~pa d;
  match Job_desc.read m ~pa with
  | Ok d' ->
    check Alcotest.bool "roundtrip" true (d = d');
    check Alcotest.bool "fresh status pending" true (Job_desc.read_status m ~pa = Job_desc.Pending)
  | Error e -> Alcotest.fail e

let job_desc_status () =
  let m = Mem.create () in
  let pa = Mem.alloc_pages m 1 in
  Job_desc.write_status m ~pa (Job_desc.Fault 2);
  (match Job_desc.read_status m ~pa with
  | Job_desc.Fault 2 -> ()
  | _ -> Alcotest.fail "fault status lost");
  Job_desc.write_status m ~pa Job_desc.Done;
  check Alcotest.bool "done" true (Job_desc.read_status m ~pa = Job_desc.Done)

let job_desc_bad_magic () =
  let m = Mem.create () in
  let pa = Mem.alloc_pages m 1 in
  match Job_desc.read m ~pa with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero page accepted as descriptor"

(* ---- Kernels ---- *)

(* A float-array view over a Kernels.Flat store: [exec] loads the array
   (rounded to f32, as GPU memory stores it), runs the job, and reads the
   whole space back so tests keep asserting on plain array cells. *)
let flat_ctx n =
  let arr = Array.make n 0.0 in
  let exec d =
    let flat = Kernels.Flat.create () in
    Array.iteri (fun i v -> Kernels.Flat.write_f32 flat (Int64.of_int (4 * i)) v) arr;
    Kernels.execute (Kernels.Flat.ctx flat) d;
    for i = 0 to n - 1 do
      arr.(i) <- Kernels.Flat.read_f32 flat (Int64.of_int (4 * i))
    done
  in
  (arr, exec)

(* A hand-checked 1-channel 3x3 conv with a 2x2 kernel, stride 1, no pad. *)
let kernels_conv_hand () =
  let arr, exec = flat_ctx 64 in
  (* input at 0: [[1;2;3];[4;5;6];[7;8;9]]  weights at 16: [[1;0];[0;1]] *)
  List.iteri (fun i v -> arr.(i) <- v) [ 1.; 2.; 3.; 4.; 5.; 6.; 7.; 8.; 9. ];
  arr.(16) <- 1.0;
  arr.(19) <- 1.0;
  let d =
    {
      Job_desc.op = Shader.Conv2d;
      shader_va = 0L;
      input_va = 0L;
      input2_va = 64L;
      bias_va = 0L;
      output_va = 128L;
      params =
        {
          Job_desc.default_params with
          Job_desc.in_c = 1;
          in_h = 3;
          in_w = 3;
          out_c = 1;
          out_h = 2;
          out_w = 2;
          kh = 2;
          kw = 2;
        };
      next_va = 0L;
    }
  in
  exec d;
  (* out[y][x] = in[y][x] + in[y+1][x+1] *)
  check (Alcotest.float 1e-6) "o00" 6.0 arr.(32);
  check (Alcotest.float 1e-6) "o01" 8.0 arr.(33);
  check (Alcotest.float 1e-6) "o10" 12.0 arr.(34);
  check (Alcotest.float 1e-6) "o11" 14.0 arr.(35)

let kernels_relu_and_bias () =
  let arr, exec = flat_ctx 64 in
  arr.(0) <- -5.0;
  arr.(1) <- 2.0;
  (* fc: 2 inputs -> 1 output, weights [1;1], bias -1, relu *)
  arr.(8) <- 1.0;
  arr.(9) <- 1.0;
  arr.(16) <- -1.0;
  let d =
    {
      Job_desc.op = Shader.Fc;
      shader_va = 0L;
      input_va = 0L;
      input2_va = 32L;
      bias_va = 64L;
      output_va = 128L;
      params =
        {
          Job_desc.default_params with
          Job_desc.in_c = 2;
          in_h = 1;
          in_w = 1;
          out_c = 1;
          out_h = 1;
          out_w = 1;
          relu = true;
        };
      next_va = 0L;
    }
  in
  exec d;
  (* -5 + 2 - 1 = -4, relu -> 0 *)
  check (Alcotest.float 1e-6) "relu clamps" 0.0 arr.(32)

let kernels_maxpool_hand () =
  let arr, exec = flat_ctx 64 in
  List.iteri (fun i v -> arr.(i) <- v) [ 1.; 9.; 2.; 8.; 3.; 7.; 4.; 6.; 5. ];
  let d =
    {
      Job_desc.op = Shader.Maxpool;
      shader_va = 0L;
      input_va = 0L;
      input2_va = 0L;
      bias_va = 0L;
      output_va = 128L;
      params =
        {
          Job_desc.default_params with
          Job_desc.in_c = 1;
          in_h = 3;
          in_w = 3;
          out_c = 1;
          out_h = 2;
          out_w = 2;
          kh = 2;
          kw = 2;
        };
      next_va = 0L;
    }
  in
  exec d;
  check (Alcotest.float 1e-6) "max window" 9.0 arr.(32);
  check (Alcotest.float 1e-6) "max window 2" 9.0 arr.(33)

let kernels_softmax_normalizes () =
  let arr, exec = flat_ctx 64 in
  List.iteri (fun i v -> arr.(i) <- v) [ 1.0; 2.0; 3.0; 4.0 ];
  let d =
    {
      Job_desc.op = Shader.Softmax;
      shader_va = 0L;
      input_va = 0L;
      input2_va = 0L;
      bias_va = 0L;
      output_va = 64L;
      params =
        { Job_desc.default_params with Job_desc.in_c = 4; in_h = 1; in_w = 1; out_c = 4; out_h = 1; out_w = 1 };
      next_va = 0L;
    }
  in
  exec d;
  let sum = arr.(16) +. arr.(17) +. arr.(18) +. arr.(19) in
  check (Alcotest.float 1e-6) "sums to 1" 1.0 sum;
  check Alcotest.bool "monotone" true (arr.(19) > arr.(18) && arr.(18) > arr.(17))

let kernels_partition_covers () =
  (* Partitioned conv jobs must produce exactly the same output as one
     unpartitioned job. *)
  let run parts =
    let arr, exec = flat_ctx 4096 in
    let rng = Grt_util.Rng.create ~seed:17L in
    for i = 0 to 26 do
      arr.(i) <- Grt_util.Rng.float rng 1.0
    done;
    (* weights: 6 oc x 3 ic x 2 x 2 at float index 256 *)
    for i = 0 to (6 * 3 * 4) - 1 do
      arr.(256 + i) <- Grt_util.Rng.float rng 1.0 -. 0.5
    done;
    let base part_idx part_count =
      {
        Job_desc.op = Shader.Conv2d;
        shader_va = 0L;
        input_va = 0L;
        input2_va = 1024L;
        bias_va = 0L;
        output_va = 2048L;
        params =
          {
            Job_desc.default_params with
            Job_desc.in_c = 3;
            in_h = 3;
            in_w = 3;
            out_c = 6;
            out_h = 2;
            out_w = 2;
            kh = 2;
            kw = 2;
            part_idx;
            part_count;
          };
        next_va = 0L;
      }
    in
    for p = 0 to parts - 1 do
      exec (base p parts)
    done;
    Array.sub arr 512 24
  in
  let whole = run 1 and split = run 3 in
  Array.iteri
    (fun i v -> check (Alcotest.float 1e-6) (Printf.sprintf "out[%d]" i) v split.(i))
    whole

let kernels_partition_range_props =
  qtest "partitions tile the range exactly"
    QCheck2.Gen.(pair (int_range 1 100) (int_range 1 16))
    (fun (total, parts) ->
      let covered = Array.make total 0 in
      for p = 0 to parts - 1 do
        let first, count = Kernels.partition_range ~total ~part_idx:p ~part_count:parts in
        for i = first to first + count - 1 do
          covered.(i) <- covered.(i) + 1
        done
      done;
      Array.for_all (fun c -> c = 1) covered)

let kernels_shape_check () =
  let _, exec = flat_ctx 64 in
  let d =
    {
      Job_desc.op = Shader.Conv2d;
      shader_va = 0L;
      input_va = 0L;
      input2_va = 0L;
      bias_va = 0L;
      output_va = 0L;
      params =
        {
          Job_desc.default_params with
          Job_desc.in_c = 1;
          in_h = 3;
          in_w = 3;
          out_c = 1;
          out_h = 5 (* inconsistent *);
          out_w = 2;
          kh = 2;
          kw = 2;
        };
      next_va = 0L;
    }
  in
  match exec d with
  | () -> Alcotest.fail "bad geometry accepted"
  | exception Kernels.Kernel_fault _ -> ()

let kernels_flops_positive () =
  List.iter
    (fun op ->
      let p =
        {
          Job_desc.default_params with
          Job_desc.in_c = 4;
          in_h = 8;
          in_w = 8;
          in2_c = 4;
          out_c = 8;
          out_h = 8;
          out_w = 8;
          kh = 3;
          kw = 3;
        }
      in
      if Int64.compare (Kernels.flops op p) 0L <= 0 then
        Alcotest.failf "flops of %s not positive" (Shader.op_name op))
    [ Shader.Conv2d; Shader.Depthwise; Shader.Fc; Shader.Maxpool; Shader.Avgpool; Shader.Relu;
      Shader.Copy; Shader.Add; Shader.Concat2; Shader.Softmax ]

(* ---- Device ---- *)

let fresh_device ?(sku = Sku.g71_mp8) () =
  let clock = Clock.create () in
  let mem = Mem.create () in
  let dev = Device.create ~clock ~mem ~sku ~session_salt:0x5EEDL () in
  (dev, clock, mem)

let device_identity_regs () =
  let dev, _, _ = fresh_device () in
  check Alcotest.int64 "gpu id" Sku.g71_mp8.Sku.gpu_id (Device.read_reg dev Regs.gpu_id);
  check Alcotest.int64 "shader present" 0xFFL (Device.read_reg dev Regs.shader_present_lo);
  check Alcotest.int64 "as present" 0xFFL (Device.read_reg dev Regs.as_present)

let device_power_sequence () =
  let dev, clock, _ = fresh_device () in
  Device.write_reg dev Regs.shader_pwron_lo 0xFFL;
  check Alcotest.int64 "not ready immediately" 0L (Device.read_reg dev Regs.shader_ready_lo);
  Clock.advance_ns clock (Int64.of_int (Sku.g71_mp8.Sku.power_up_us * 1000 + 1000));
  check Alcotest.int64 "ready after transition" 0xFFL (Device.read_reg dev Regs.shader_ready_lo);
  (* POWER_CHANGED_ALL raised *)
  check Alcotest.bool "irq bit" true
    (Int64.logand (Device.read_reg dev Regs.gpu_irq_rawstat) Regs.irq_power_changed_all <> 0L)

let device_soft_reset () =
  let dev, clock, _ = fresh_device () in
  Device.write_reg dev Regs.shader_pwron_lo 0xFFL;
  Clock.advance_ns clock 1_000_000L;
  Device.write_reg dev Regs.gpu_command Regs.cmd_soft_reset;
  Clock.advance_ns clock (Int64.of_int (Sku.g71_mp8.Sku.reset_us * 1000 + 1000));
  check Alcotest.bool "reset completed bit" true
    (Int64.logand (Device.read_reg dev Regs.gpu_irq_rawstat) Regs.irq_reset_completed <> 0L);
  check Alcotest.int64 "cores powered off by reset" 0L (Device.read_reg dev Regs.shader_ready_lo)

let device_irq_masking () =
  let dev, clock, _ = fresh_device () in
  Device.write_reg dev Regs.gpu_irq_mask 0L;
  Device.write_reg dev Regs.shader_pwron_lo 0x1L;
  Clock.advance_ns clock 10_000_000L;
  check (Alcotest.list Alcotest.bool) "masked irq not pending" []
    (List.map (fun _ -> true) (Device.irq_pending dev));
  Device.write_reg dev Regs.gpu_irq_mask Regs.irq_power_changed_all;
  check Alcotest.bool "unmasked now pending" true (Device.irq_pending dev <> [])

let device_flush_id_changes () =
  let dev, clock, _ = fresh_device () in
  let id0 = Device.read_reg dev Regs.latest_flush_id in
  Device.write_reg dev Regs.gpu_command Regs.cmd_clean_inv_caches;
  Clock.advance_ns clock 100_000_000L;
  let id1 = Device.read_reg dev Regs.latest_flush_id in
  check Alcotest.bool "flush id advanced" false (Int64.equal id0 id1)

let device_session_salt_differs () =
  let clock = Clock.create () in
  let mem = Mem.create () in
  let d1 = Device.create ~clock ~mem ~sku:Sku.g71_mp8 ~session_salt:1L () in
  let d2 = Device.create ~clock ~mem ~sku:Sku.g71_mp8 ~session_salt:2L () in
  check Alcotest.bool "salted flush ids differ" false
    (Int64.equal (Device.read_reg d1 Regs.latest_flush_id) (Device.read_reg d2 Regs.latest_flush_id))

let device_as_command_busy () =
  let dev, clock, _ = fresh_device () in
  Device.write_reg dev (Regs.as_command 1) Regs.as_cmd_flush_mem;
  check Alcotest.int64 "busy during flush" Regs.as_status_flush_active
    (Device.read_reg dev (Regs.as_status 1));
  Clock.advance_ns clock 30_000_000L;
  check Alcotest.int64 "idle after flush" 0L (Device.read_reg dev (Regs.as_status 1))

(* Set up a minimal runnable job directly against the device. *)
let setup_job ?(sku = Sku.g71_mp8) ?(shader_sku = Sku.g71_mp8) () =
  let dev, clock, mem = fresh_device ~sku () in
  (* power up *)
  Device.write_reg dev Regs.l2_pwron_lo (Sku.l2_present_mask sku);
  Device.write_reg dev Regs.shader_pwron_lo (Sku.shader_present_mask sku);
  Clock.advance_ns clock 10_000_000L;
  Device.write_reg dev Regs.job_irq_mask 0xFFFF_FFFFL;
  Device.write_reg dev Regs.mmu_irq_mask 0xFFFF_FFFFL;
  (* page tables *)
  let mmu = Mmu.create mem ~fmt:sku.Sku.pt_format in
  let shader_bin = Shader.compile ~sku:shader_sku ~op:Shader.Relu in
  let code_pa = Mem.alloc_pages mem 1 in
  Mem.write_bytes mem code_pa shader_bin;
  let data_pa = Mem.alloc_pages mem 1 in
  let desc_pa = Mem.alloc_pages mem 1 in
  let code_va = 0x10_0000L and data_va = 0x20_0000L and desc_va = 0x30_0000L in
  Mmu.map_page mmu ~va:code_va ~pa:code_pa ~flags:Mmu.rx_code;
  Mmu.map_page mmu ~va:data_va ~pa:data_pa ~flags:Mmu.rw_data;
  Mmu.map_page mmu ~va:desc_va ~pa:desc_pa ~flags:Mmu.rw_data;
  (* input floats *)
  List.iteri
    (fun i v -> Mem.write_f32 mem (Int64.add data_pa (Int64.of_int (4 * i))) v)
    [ -1.0; 2.0; -3.0; 4.0 ];
  let desc =
    {
      Job_desc.op = Shader.Relu;
      shader_va = code_va;
      input_va = data_va;
      input2_va = 0L;
      bias_va = 0L;
      output_va = Int64.add data_va 64L;
      params =
        {
          Job_desc.default_params with
          Job_desc.in_c = 4;
          in_h = 1;
          in_w = 1;
          out_c = 4;
          out_h = 1;
          out_w = 1;
          flops_hint = 1000L;
        };
      next_va = 0L;
    }
  in
  Job_desc.write mem ~pa:desc_pa desc;
  (* program AS 0 *)
  let root = Mmu.root_pa mmu in
  Device.write_reg dev (Regs.as_transtab_lo 0) (Int64.logand root 0xFFFF_FFFFL);
  Device.write_reg dev (Regs.as_transtab_hi 0) (Int64.shift_right_logical root 32);
  (dev, clock, mem, desc_va, data_pa, desc_pa)

let submit dev desc_va =
  Device.write_reg dev (Regs.js_head_next_lo 0) (Int64.logand desc_va 0xFFFF_FFFFL);
  Device.write_reg dev (Regs.js_head_next_hi 0) (Int64.shift_right_logical desc_va 32);
  Device.write_reg dev (Regs.js_config_next 0) 0L;
  (* AS 0 *)
  Device.write_reg dev (Regs.js_command_next 0) Regs.js_cmd_start

let device_runs_job () =
  let dev, _, mem, desc_va, data_pa, desc_pa = setup_job () in
  submit dev desc_va;
  (match Device.wait_for_irq dev ~timeout_ns:1_000_000_000L with
  | Some Device.Job_irq -> ()
  | _ -> Alcotest.fail "no job irq");
  check Alcotest.bool "done bit" true
    (Int64.logand (Device.read_reg dev Regs.job_irq_rawstat) 1L <> 0L);
  check Alcotest.int64 "slot status done" Regs.js_status_done (Device.read_reg dev (Regs.js_status 0));
  check Alcotest.bool "descriptor status done" true (Job_desc.read_status mem ~pa:desc_pa = Job_desc.Done);
  (* relu output *)
  let out i = Mem.read_f32 mem (Int64.add data_pa (Int64.of_int (64 + (4 * i)))) in
  check (Alcotest.float 1e-6) "clamped" 0.0 (out 0);
  check (Alcotest.float 1e-6) "passed" 2.0 (out 1);
  check Alcotest.int "jobs executed" 1 (Device.jobs_executed dev)

let device_rejects_foreign_shader () =
  (* §2.4: a shader built for another SKU must fault. *)
  let dev, _, _, desc_va, _, _ = setup_job ~sku:Sku.g71_mp8 ~shader_sku:Sku.g76_mp12 () in
  submit dev desc_va;
  (match Device.wait_for_irq dev ~timeout_ns:1_000_000_000L with
  | Some Device.Job_irq -> ()
  | _ -> Alcotest.fail "no irq");
  check Alcotest.bool "fail bit set" true
    (Int64.logand (Device.read_reg dev Regs.job_irq_rawstat) 0x1_0000L <> 0L);
  match Device.last_fault dev with
  | Some msg when String.length msg > 0 ->
    check Alcotest.bool "mentions SKU" true
      (String.length msg >= 6 && String.sub msg 0 6 = "shader")
  | _ -> Alcotest.fail "no fault recorded"

let device_faults_on_unmapped_chain () =
  let dev, _, _, _, _, _ = setup_job () in
  submit dev 0x70_0000L;
  (* unmapped descriptor address *)
  match Device.wait_for_irq dev ~timeout_ns:1_000_000_000L with
  | Some Device.Job_irq ->
    check Alcotest.bool "fail bit" true
      (Int64.logand (Device.read_reg dev Regs.job_irq_rawstat) 0x1_0000L <> 0L);
    check Alcotest.bool "mmu fault latched" true
      (Int64.compare (Device.read_reg dev Regs.mmu_irq_rawstat) 0L > 0)
  | Some Device.Mmu_irq -> ()
  | _ -> Alcotest.fail "expected a fault interrupt"

let device_job_needs_power () =
  let dev, clock, mem = fresh_device () in
  Device.write_reg dev Regs.job_irq_mask 0xFFFF_FFFFL;
  let mmu = Mmu.create mem ~fmt:Sku.Lpae_v7 in
  let root = Mmu.root_pa mmu in
  Device.write_reg dev (Regs.as_transtab_lo 0) (Int64.logand root 0xFFFF_FFFFL);
  Device.write_reg dev (Regs.as_transtab_hi 0) (Int64.shift_right_logical root 32);
  submit dev 0x1000L;
  Clock.advance_ns clock 100_000_000L;
  check Alcotest.bool "fail bit without power" true
    (Int64.logand (Device.read_reg dev Regs.job_irq_rawstat) 0x1_0000L <> 0L)

let device_wait_timeout () =
  let dev, _, _ = fresh_device () in
  check Alcotest.bool "timeout returns None" true
    (Device.wait_for_irq dev ~timeout_ns:1_000_000L = None)

let () =
  Alcotest.run "grt_gpu"
    [
      ( "regs",
        [
          Alcotest.test_case "names" `Quick regs_names;
          Alcotest.test_case "disjoint blocks" `Quick regs_disjoint_blocks;
          Alcotest.test_case "nondeterministic set" `Quick regs_nondet;
          Alcotest.test_case "bounds" `Quick regs_bounds;
        ] );
      ( "sku",
        [
          Alcotest.test_case "catalog" `Quick sku_catalog;
          Alcotest.test_case "masks" `Quick sku_masks;
          Alcotest.test_case "ids unique" `Quick sku_ids_unique;
          Alcotest.test_case "throughput ordering" `Quick sku_throughput_ordering;
        ] );
      ( "mem",
        [
          Alcotest.test_case "read/write" `Quick mem_rw;
          Alcotest.test_case "unmapped reads zero" `Quick mem_unmapped_reads_zero;
          Alcotest.test_case "page straddle" `Quick mem_page_boundary_straddle;
          Alcotest.test_case "alloc distinct" `Quick mem_alloc_distinct;
          Alcotest.test_case "dirty tracking" `Quick mem_dirty_tracking;
          Alcotest.test_case "get/set page" `Quick mem_get_set_page;
          Alcotest.test_case "snapshot/restore" `Quick mem_snapshot_restore;
          mem_qcheck_rw;
        ] );
      ( "mmu",
        [
          Alcotest.test_case "map/translate" `Quick mmu_map_translate;
          Alcotest.test_case "permissions" `Quick mmu_permissions;
          Alcotest.test_case "unmap" `Quick mmu_unmap;
          Alcotest.test_case "block mapping" `Quick mmu_block_mapping;
          Alcotest.test_case "v8 access flag" `Quick mmu_v8_access_flag;
          Alcotest.test_case "table pages" `Quick mmu_table_pages;
          Alcotest.test_case "spans coalesce" `Quick mmu_mapped_spans_coalesce;
          mmu_qcheck_translate;
        ] );
      ( "shader",
        [
          Alcotest.test_case "compile/parse" `Quick shader_compile_parse;
          Alcotest.test_case "deterministic" `Quick shader_deterministic;
          Alcotest.test_case "SKU specific" `Quick shader_sku_specific;
          Alcotest.test_case "opcode roundtrip" `Quick shader_op_codes_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick shader_rejects_garbage;
        ] );
      ( "job_desc",
        [
          Alcotest.test_case "roundtrip" `Quick job_desc_roundtrip;
          Alcotest.test_case "status" `Quick job_desc_status;
          Alcotest.test_case "bad magic" `Quick job_desc_bad_magic;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "conv hand-checked" `Quick kernels_conv_hand;
          Alcotest.test_case "fc bias+relu" `Quick kernels_relu_and_bias;
          Alcotest.test_case "maxpool hand-checked" `Quick kernels_maxpool_hand;
          Alcotest.test_case "softmax normalizes" `Quick kernels_softmax_normalizes;
          Alcotest.test_case "partition equivalence" `Quick kernels_partition_covers;
          kernels_partition_range_props;
          Alcotest.test_case "shape check" `Quick kernels_shape_check;
          Alcotest.test_case "flops positive" `Quick kernels_flops_positive;
        ] );
      ( "device",
        [
          Alcotest.test_case "identity regs" `Quick device_identity_regs;
          Alcotest.test_case "power sequence" `Quick device_power_sequence;
          Alcotest.test_case "soft reset" `Quick device_soft_reset;
          Alcotest.test_case "irq masking" `Quick device_irq_masking;
          Alcotest.test_case "flush id changes" `Quick device_flush_id_changes;
          Alcotest.test_case "session salt" `Quick device_session_salt_differs;
          Alcotest.test_case "AS command busy window" `Quick device_as_command_busy;
          Alcotest.test_case "runs a job" `Quick device_runs_job;
          Alcotest.test_case "rejects foreign shader" `Quick device_rejects_foreign_shader;
          Alcotest.test_case "faults on unmapped chain" `Quick device_faults_on_unmapped_chain;
          Alcotest.test_case "job needs power" `Quick device_job_needs_power;
          Alcotest.test_case "wait timeout" `Quick device_wait_timeout;
        ] );
    ]
