(* Sliding-window link equivalence harness (the PR 3 tentpole's proof).

   The windowed transmission pipeline and the historical stop-and-wait ARQ
   draw fault outcomes from the same seeded RNG in the same order, so for
   any traffic and any fault spec they must agree on *what* happens —
   per-exchange success / [Link_down] attempt counts, retransmission counts,
   and ultimately the signed recording bytes — while being free to disagree
   on *when* (clock, energy, timing-side counters). The qcheck properties
   here check both halves: a link-level outcome equivalence over random
   traffic scripts × fault specs, and a recorder-level blob equivalence
   across modes. Deterministic cases pin the new behaviours: window stalls,
   go-back-N span accounting, drain-before-swap in [set_profile], the
   in-flight high-water metric, and the lossy-cellular speedup. *)

module Profile = Grt_net.Profile
module Link = Grt_net.Link
module Clock = Grt_sim.Clock
module Counters = Grt_sim.Counters
module Mode = Grt.Mode
module O = Grt.Orchestrate

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- link-level outcome equivalence ---- *)

(* A traffic script: the exchange mix the recorder actually produces
   (blocking commits, speculative async sends + completion waits, one-way
   pushes), with random sizes. *)
type op =
  | Rt of int * int
  | Async of int * int
  | Wait
  | Down_push of int
  | Up_push of int

let run_script ~window ~profile ~seed script =
  let clock = Clock.create () in
  let counters = Counters.create () in
  let link = Link.create ~clock ~counters ~seed ~window profile in
  let pending = ref [] in
  List.map
    (fun op ->
      let before = Link.retransmits link in
      let outcome =
        try
          (match op with
          | Rt (s, r) -> Link.round_trip link ~send_bytes:s ~recv_bytes:r
          | Async (s, r) -> pending := Link.async_send link ~send_bytes:s ~recv_bytes:r :: !pending
          | Wait -> (
            match !pending with
            | [] -> ()
            | c :: rest ->
              Link.wait_until link c;
              pending := rest)
          | Down_push b -> Link.one_way_to_client link ~bytes:b
          | Up_push b -> Link.one_way_from_client link ~bytes:b);
          `Ok
        with Link.Link_down { attempts; _ } -> `Down attempts
      in
      (outcome, Link.retransmits link - before))
    script

let gen_op =
  QCheck2.Gen.(
    oneof
      [
        map2 (fun s r -> Rt (s, r)) (int_range 16 4096) (int_range 16 4096);
        map2 (fun s r -> Async (s, r)) (int_range 16 4096) (int_range 16 4096);
        return Wait;
        map (fun b -> Down_push b) (int_range 16 65536);
        map (fun b -> Up_push b) (int_range 16 65536);
      ])

let gen_fault_spec =
  (* Up to heavy loss: [Link_down] outcomes are part of the equivalence. *)
  QCheck2.Gen.(
    quad (float_bound_inclusive 0.4) (float_bound_inclusive 0.3) (float_bound_inclusive 0.2)
      (float_bound_inclusive 0.05))

let gen_case =
  QCheck2.Gen.(
    quad (oneofl [ Profile.wifi; Profile.cellular ]) gen_fault_spec
      (map Int64.of_int int)
      (list_size (int_range 1 60) gen_op))

let window_outcome_equivalence =
  qtest ~count:320 "windowed ARQ outcome-equivalent to stop-and-wait"
    gen_case
    (fun (base, (drop, dup, corrupt, jitter), seed, script) ->
      let profile =
        Profile.degrade ~drop_prob:drop ~dup_prob:dup ~corrupt_prob:corrupt ~jitter_s:jitter base
      in
      let reference = run_script ~window:1 ~profile ~seed script in
      List.for_all
        (fun window -> run_script ~window ~profile ~seed script = reference)
        [ 2; 4; 8 ])

(* ---- recorder-level blob equivalence ---- *)

let record ~mode ~window ~max_inflight ~drop seed =
  let profile =
    if drop > 0. then Profile.degrade ~drop_prob:drop Profile.wifi else Profile.wifi
  in
  let config = { (Mode.default_config mode) with Mode.max_inflight } in
  O.record
    ~history:(Grt.Drivershim.fresh_history ())
    ~config ~window ~profile ~mode ~sku:Grt_gpu.Sku.g71_mp8 ~net:Grt_mlfw.Zoo.mnist ~seed ()

let window_recording_equivalence =
  qtest ~count:8 "pipelined recordings bit-identical across modes"
    QCheck2.Gen.(pair (map Int64.of_int int) (float_bound_inclusive 0.08))
    (fun (seed, drop) ->
      List.for_all
        (fun mode ->
          let reference = record ~mode ~window:1 ~max_inflight:0 ~drop seed in
          let windowed = record ~mode ~window:4 ~max_inflight:4 ~drop seed in
          Bytes.equal reference.O.blob windowed.O.blob
          && Array.length reference.O.recording.Grt.Recording.entries
             = Array.length windowed.O.recording.Grt.Recording.entries)
        [ Mode.Ours_m; Mode.Ours_md; Mode.Ours_mds ])

(* ---- deterministic window behaviours ---- *)

let make_link ?(window = 1) ?(seed = 11L) profile =
  let clock = Clock.create () in
  let counters = Counters.create () in
  (Link.create ~clock ~counters ~seed ~window profile, clock, counters)

let window_validates () =
  let clock = Clock.create () in
  Alcotest.check_raises "window 0 rejected"
    (Invalid_argument "Link.create: window must be >= 1") (fun () ->
      ignore (Link.create ~clock ~window:0 Profile.wifi));
  let link, _, _ = make_link ~window:3 Profile.wifi in
  check Alcotest.int "window accessor" 3 (Link.window link);
  let legacy, _, _ = make_link Profile.wifi in
  check Alcotest.int "default window" 1 (Link.window legacy)

let window_stalls_when_full () =
  let link, clock, counters = make_link ~window:2 Profile.wifi in
  let _ = Link.async_send link ~send_bytes:64 ~recv_bytes:64 in
  (* Bigger second send: a strictly later completion, so the stall below
     retires only the oldest entry. *)
  let _ = Link.async_send link ~send_bytes:65536 ~recv_bytes:64 in
  check Alcotest.int "pipe holds both" 2 (Link.inflight link);
  check Alcotest.int64 "no stall yet, clock untouched" 0L (Clock.now_ns clock);
  let _ = Link.async_send link ~send_bytes:64 ~recv_bytes:64 in
  check Alcotest.bool "third send stalled for a slot" true (Clock.now_ns clock > 0L);
  check Alcotest.int "stall counted" 1 (Counters.get_int counters "net.window_stalls");
  check Alcotest.int "oldest retired, new entry queued" 2 (Link.inflight link)

let window_one_never_stalls () =
  let link, clock, counters = make_link Profile.wifi in
  for _ = 1 to 20 do
    ignore (Link.async_send link ~send_bytes:64 ~recv_bytes:64)
  done;
  check Alcotest.int64 "legacy async never blocks" 0L (Clock.now_ns clock);
  check Alcotest.int "no window stalls" 0 (Counters.get_int counters "net.window_stalls");
  check Alcotest.int "no pipe" 0 (Link.inflight link)

let gbn_span_recharged () =
  (* With in-flight sends behind it, a retransmission resends the whole
     unacked span: the gbn counter moves and the span's bytes are
     re-charged. *)
  let link, _, counters =
    make_link ~window:4 ~seed:11L (Profile.degrade ~drop_prob:0.3 Profile.wifi)
  in
  for _ = 1 to 40 do
    try ignore (Link.async_send link ~send_bytes:256 ~recv_bytes:64)
    with Link.Link_down _ -> ()
  done;
  check Alcotest.bool "retransmits happened" true (Link.retransmits link > 0);
  check Alcotest.bool "go-back-N spans counted" true
    (Counters.get_int counters "net.gbn_retransmits" > 0);
  (* Same traffic, same seed, stop-and-wait: identical retransmit count
     (same draws), no spans. *)
  let sw, _, sw_counters =
    make_link ~seed:11L (Profile.degrade ~drop_prob:0.3 Profile.wifi)
  in
  for _ = 1 to 40 do
    try ignore (Link.async_send sw ~send_bytes:256 ~recv_bytes:64)
    with Link.Link_down _ -> ()
  done;
  check Alcotest.int "same retransmit count as stop-and-wait" (Link.retransmits sw)
    (Link.retransmits link);
  check Alcotest.int "stop-and-wait has no spans" 0
    (Counters.get_int sw_counters "net.gbn_retransmits");
  check Alcotest.bool "span bytes re-charged" true
    (Counters.get sw_counters "net.bytes_tx" < Counters.get counters "net.bytes_tx")

let gbn_detects_faster_than_rto () =
  (* Pure blocking traffic on a lossy cellular channel: identical outcomes,
     but go-back-N detection beats the backed-off RTO ladder on the clock. *)
  let lossy = Profile.degrade ~drop_prob:0.1 Profile.cellular in
  let run window =
    let link, clock, _ = make_link ~window ~seed:21L lossy in
    for _ = 1 to 200 do
      try Link.round_trip link ~send_bytes:256 ~recv_bytes:256 with Link.Link_down _ -> ()
    done;
    (Clock.now_s clock, Link.retransmits link)
  in
  let sw_s, sw_retx = run 1 in
  let w_s, w_retx = run 8 in
  check Alcotest.int "same retransmits" sw_retx w_retx;
  check Alcotest.bool "retransmits happened" true (sw_retx > 0);
  check Alcotest.bool "windowed loss detection is faster" true (w_s < sw_s)

let set_profile_drains_pipe () =
  (* Satellite fix: a mid-session profile swap must not let sends priced
     under the old profile complete against the new one — the pipe drains
     (clock advances to the last outstanding completion) before the swap. *)
  let link, clock, _ = make_link ~window:4 Profile.cellular in
  let _ = Link.async_send link ~send_bytes:4096 ~recv_bytes:64 in
  let last = Link.async_send link ~send_bytes:4096 ~recv_bytes:64 in
  check Alcotest.int "two in flight" 2 (Link.inflight link);
  Link.set_profile link Profile.lan;
  check Alcotest.int "pipe drained" 0 (Link.inflight link);
  check Alcotest.int64 "clock at last old-profile completion" last (Clock.now_ns clock);
  check Alcotest.bool "profile swapped" true (Link.profile link == Profile.lan);
  (* Window=1 keeps the historical no-op swap: no pipe, clock untouched. *)
  let legacy, legacy_clock, _ = make_link Profile.cellular in
  ignore (Link.async_send legacy ~send_bytes:4096 ~recv_bytes:64);
  Link.set_profile legacy Profile.lan;
  check Alcotest.int64 "legacy swap leaves clock alone" 0L (Clock.now_ns legacy_clock)

let set_profile_keeps_health_ring () =
  let lossy = Profile.degrade ~drop_prob:0.45 Profile.wifi in
  let link, _, _ = make_link ~window:4 ~seed:7L lossy in
  for _ = 1 to 64 do
    try Link.round_trip link ~send_bytes:64 ~recv_bytes:64 with Link.Link_down _ -> ()
  done;
  check Alcotest.bool "tripped degraded" true (Link.health link = Link.Degraded);
  Link.set_profile link Profile.wifi;
  (* The ring carries over: still degraded right after the swap, recovery
     only through fresh clean transfers. *)
  check Alcotest.bool "health survives the swap" true (Link.health link = Link.Degraded)

(* ---- pipelined recording behaviours ---- *)

let pipelined_recording_faster_on_lossy_cellular () =
  (* The bench acceptance bar, pinned as a test: windowed + pipelined
     recording beats stop-and-wait on a lossy cellular channel. *)
  let profile = Profile.degrade ~drop_prob:0.1 Profile.cellular in
  let run ~window ~max_inflight =
    let config = { (Mode.default_config Mode.Ours_mds) with Mode.max_inflight } in
    O.record
      ~history:(Grt.Drivershim.fresh_history ())
      ~config ~window ~profile ~mode:Mode.Ours_mds ~sku:Grt_gpu.Sku.g71_mp8
      ~net:Grt_mlfw.Zoo.mnist ~seed:42L ()
  in
  let sw = run ~window:1 ~max_inflight:0 in
  let windowed = run ~window:8 ~max_inflight:8 in
  check Alcotest.bool "windowed recording is faster" true (windowed.O.total_s < sw.O.total_s);
  check Alcotest.bytes "same signed blob" sw.O.blob windowed.O.blob

let inflight_high_water_tracked_when_pipelined () =
  let windowed = record ~mode:Mode.Ours_mds ~window:4 ~max_inflight:4 ~drop:0. 42L in
  let hw = Counters.get_int windowed.O.counters "spec.inflight_hw" in
  check Alcotest.bool "high-water positive" true (hw > 0);
  check Alcotest.bool "high-water bounded by the cap" true (hw <= 4);
  (* Untracked on the default path, so default counter dumps stay
     byte-identical to the pre-window recorder. *)
  let default_run = record ~mode:Mode.Ours_mds ~window:1 ~max_inflight:0 ~drop:0. 42L in
  check Alcotest.int "not tracked by default" 0
    (Counters.get_int default_run.O.counters "spec.inflight_hw")

let window_one_counter_output_identical () =
  (* "window=1 runs byte-identical to pre-PR recordings AND counter output":
     within this process, an explicit ~window:1 run must reproduce the
     default run's blob and its full counter dump, byte for byte. *)
  let a =
    O.record ~history:(Grt.Drivershim.fresh_history ()) ~profile:Profile.wifi ~mode:Mode.Ours_mds
      ~sku:Grt_gpu.Sku.g71_mp8 ~net:Grt_mlfw.Zoo.mnist ~seed:42L ()
  in
  let b =
    O.record ~history:(Grt.Drivershim.fresh_history ()) ~window:1 ~profile:Profile.wifi
      ~mode:Mode.Ours_mds ~sku:Grt_gpu.Sku.g71_mp8 ~net:Grt_mlfw.Zoo.mnist ~seed:42L ()
  in
  check Alcotest.bytes "same blob" a.O.blob b.O.blob;
  let dump o = Format.asprintf "%a" Counters.pp o.O.counters in
  check Alcotest.string "same counter dump" (dump a) (dump b)

let () =
  Alcotest.run "grt_window"
    [
      ( "equivalence",
        [
          window_outcome_equivalence;
          window_recording_equivalence;
        ] );
      ( "window",
        [
          Alcotest.test_case "window validates" `Quick window_validates;
          Alcotest.test_case "stalls when full" `Quick window_stalls_when_full;
          Alcotest.test_case "window=1 never stalls" `Quick window_one_never_stalls;
          Alcotest.test_case "go-back-N span accounting" `Quick gbn_span_recharged;
          Alcotest.test_case "go-back-N detects faster than RTO" `Quick
            gbn_detects_faster_than_rto;
          Alcotest.test_case "set_profile drains the pipe" `Quick set_profile_drains_pipe;
          Alcotest.test_case "set_profile keeps the health ring" `Quick
            set_profile_keeps_health_ring;
        ] );
      ( "pipelined-recording",
        [
          Alcotest.test_case "faster on lossy cellular" `Quick
            pipelined_recording_faster_on_lossy_cellular;
          Alcotest.test_case "in-flight high-water metric" `Quick
            inflight_high_water_tracked_when_pipelined;
          Alcotest.test_case "window=1 counter output identical" `Quick
            window_one_counter_output_identical;
        ] );
    ]
