(* Differential testing of the forwarding shims (§4's correctness claim):
   for ANY driver behaviour, the client GPU must observe the same register
   access sequence under deferral/speculation as under native execution.

   We generate random "driver programs" over the backend interface and run
   each one twice: natively against a local device, and through
   DriverShim -> network -> GPUShim against a client device (in every
   recorder mode). The devices' visible states and the programs' observed
   read values must agree. *)

module Backend = Grt_driver.Backend
module Device = Grt_gpu.Device
module Mem = Grt_gpu.Mem
module Regs = Grt_gpu.Regs
module Sku = Grt_gpu.Sku
module Sexpr = Grt_util.Sexpr
module Mode = Grt.Mode
module Clock = Grt_sim.Clock

(* ---- random driver programs ---- *)

(* Only time-insensitive behaviour is generated/compared: the shimmed run
   advances the virtual clock by whole RTTs, so registers that reflect
   in-flight hardware transitions (IRQ status racing an in-flight power-off)
   would diverge legitimately. Config registers, symbolic read-modify-write
   chains, power-up + readiness polls and control dependencies are the
   deterministic core the ordering guarantee (§4.1) is about. *)
type op =
  | Write_config of int * int64  (* which config reg, value *)
  | Read_config of int
  | Read_modify_write of int * int64  (* reg, OR mask — exercises symbolism *)
  | Power_on_shader
  | Poll_ready of Backend.poll_cond
  | Clear_irqs
  | Force_pending  (* control dependency on the last read *)
  | Lock_unlock
  | Delay of int
  | Hot of op list  (* nest inside a hot function *)

let config_regs = [| Regs.shader_config; Regs.tiler_config; Regs.l2_mmu_config; Regs.mmu_config |]

let gen_op : op QCheck2.Gen.t =
  let open QCheck2.Gen in
  let leaf =
    frequency
      [
        (4, map2 (fun r v -> Write_config (r, Int64.of_int v)) (int_bound 3) (int_bound 0xFFFF));
        (4, map (fun r -> Read_config r) (int_bound 3));
        (3, map2 (fun r v -> Read_modify_write (r, Int64.of_int v)) (int_bound 3) (int_bound 0xFF));
        (2, return Power_on_shader);
        (1, return (Poll_ready Backend.Bits_set));
        (2, return Clear_irqs);
        (2, return Force_pending);
        (2, return Lock_unlock);
        (1, map (fun d -> Delay (1 + d)) (int_bound 5));
      ]
  in
  frequency [ (5, leaf); (1, map (fun ops -> Hot ops) (list_size (int_range 1 5) leaf)) ]

let gen_program = QCheck2.Gen.(list_size (int_range 3 25) gen_op)

(* Interpret a program against a backend; returns observed read values. *)
let interpret (b : Backend.t) program =
  let observed = ref [] in
  let last_read = ref (Sexpr.const 0L) in
  let emit v = observed := v :: !observed in
  let rec exec op =
    match op with
    | Write_config (i, v) -> b.Backend.write_reg config_regs.(i) (Sexpr.const v)
    | Read_config i -> last_read := b.Backend.read_reg config_regs.(i)
    | Read_modify_write (i, mask) ->
      let v = b.Backend.read_reg config_regs.(i) in
      b.Backend.write_reg config_regs.(i) (Sexpr.logor v (Sexpr.const mask))
    | Power_on_shader -> b.Backend.write_reg Regs.shader_pwron_lo (Sexpr.const 0xFFL)
    | Poll_ready cond -> (
      match
        b.Backend.poll_reg ~reg:Regs.shader_ready_lo ~mask:0xFFL ~cond ~max_iters:4000
          ~spin_ns:1000L
      with
      | Backend.Poll_ok { value; _ } -> emit value
      | Backend.Poll_timeout -> emit (-1L))
    | Clear_irqs -> b.Backend.write_reg Regs.gpu_irq_clear (Sexpr.const 0xFFFF_FFFFL)
    | Force_pending -> emit (b.Backend.force !last_read)
    | Lock_unlock ->
      b.Backend.lock "diff.lock";
      b.Backend.unlock "diff.lock"
    | Delay d -> b.Backend.delay_us d
    | Hot ops ->
      b.Backend.enter_hot "kbase_diff_hot_fn";
      List.iter exec ops;
      b.Backend.exit_hot "kbase_diff_hot_fn"
  in
  List.iter exec program;
  (* Resolve anything still pending. *)
  emit (b.Backend.force !last_read);
  List.rev !observed

(* Visible device state we compare after the run (time-insensitive part;
   the clock is advanced past any pending transition first). *)
let device_state clock dev =
  Clock.advance_s clock 0.1;
  List.map
    (fun r -> Device.read_reg dev r)
    [
      Regs.shader_config; Regs.tiler_config; Regs.l2_mmu_config; Regs.mmu_config;
      Regs.shader_ready_lo;
    ]

let run_native program =
  let clock = Clock.create () in
  let mem = Mem.create () in
  let dev = Device.create ~clock ~mem ~sku:Sku.g71_mp8 ~session_salt:0L () in
  let b = Grt.Native.backend dev in
  let observed = interpret b program in
  (observed, device_state clock dev)

(* Mispredictions are part of the speculation contract: detected at
   validation and recovered by rolling both sides back and re-running
   (§4.2) — exactly what the orchestrator does. Random programs fool the
   confidence heuristic easily (their config writes vary), so the harness
   performs the same retry. Each retry teaches the history the divergent
   value, so the re-run stops speculating on that site and terminates. *)
let rec mispredict_prefix = function
  | Grt.Drivershim.Mispredict { valid_log; _ } -> Some valid_log
  | Fun.Finally_raised e -> mispredict_prefix e
  | _ -> None

let run_shimmed ~mode ?history ?(window = 1) ?(max_inflight = 0) program =
  let history = match history with Some h -> h | None -> Grt.Drivershim.fresh_history () in
  let rec attempt n prefix =
    if n > 10 then failwith "differential: too many rollbacks";
    let clock = Clock.create () in
    let link = Grt_net.Link.create ~clock ~window Grt_net.Profile.wifi in
    let cfg = { (Mode.default_config mode) with Mode.max_inflight } in
    let gpushim = Grt.Gpushim.create ~clock ~sku:Sku.g71_mp8 ~session_salt:0L ~cfg () in
    Grt.Gpushim.isolate gpushim;
    let cloud_mem = Mem.create () in
    let shim =
      Grt.Drivershim.create ~cfg ~link ~gpushim ~cloud_mem ~history ~replay_prefix:prefix ()
    in
    match
      let observed = interpret (Grt.Drivershim.backend shim) program in
      Grt.Drivershim.finalize shim;
      (observed, device_state clock (Grt.Gpushim.device gpushim))
    with
    | result -> result
    | exception e when mispredict_prefix e <> None ->
      attempt (n + 1) (Option.get (mispredict_prefix e))
  in
  attempt 0 []

let agree program mode =
  let native_obs, native_state = run_native program in
  let shim_obs, shim_state = run_shimmed ~mode program in
  native_obs = shim_obs && native_state = shim_state

let qtest ?(count = 150) name prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen_program prop)

let diff_naive = qtest "naive forwarding == native" (fun p -> agree p Mode.Naive)

let diff_md = qtest "deferral == native" (fun p -> agree p Mode.Ours_md)

let diff_mds = qtest "deferral+speculation == native" (fun p -> agree p Mode.Ours_mds)

let diff_mds_warm =
  (* Warm the speculation history with the same program three times, then
     check the fourth (speculating) run still agrees with native. *)
  qtest ~count:60 "warmed speculation == native" (fun p ->
      let history = Grt.Drivershim.fresh_history () in
      for _ = 1 to 3 do
        ignore (run_shimmed ~mode:Mode.Ours_mds ~history p)
      done;
      let shim_obs, shim_state = run_shimmed ~mode:Mode.Ours_mds ~history p in
      let native_obs, native_state = run_native p in
      shim_obs = native_obs && shim_state = native_state)

let diff_modes_pairwise =
  qtest ~count:60 "all recorder modes observe identical values" (fun p ->
      let obs mode = fst (run_shimmed ~mode p) in
      let naive = obs Mode.Naive in
      obs Mode.Ours_m = naive && obs Mode.Ours_md = naive && obs Mode.Ours_mds = naive)

let diff_mds_pipelined =
  (* Pipelined speculation: several commits in flight over a windowed link
     (max_inflight > 1, window 4). Validation drains in order; the client
     GPU must still end in the native state. *)
  qtest ~count:100 "pipelined speculation == native" (fun p ->
      let native_obs, native_state = run_native p in
      let shim_obs, shim_state =
        run_shimmed ~mode:Mode.Ours_mds ~window:4 ~max_inflight:2 p
      in
      native_obs = shim_obs && native_state = shim_state)

let diff_mds_pipelined_warm =
  qtest ~count:40 "warmed pipelined speculation == native" (fun p ->
      let history = Grt.Drivershim.fresh_history () in
      for _ = 1 to 3 do
        ignore (run_shimmed ~mode:Mode.Ours_mds ~history ~window:4 ~max_inflight:2 p)
      done;
      let shim_obs, shim_state =
        run_shimmed ~mode:Mode.Ours_mds ~history ~window:4 ~max_inflight:2 p
      in
      let native_obs, native_state = run_native p in
      shim_obs = native_obs && shim_state = native_state)

let () =
  Alcotest.run "grt_differential"
    [
      ( "shim-vs-native",
        [
          diff_naive;
          diff_md;
          diff_mds;
          diff_mds_warm;
          diff_modes_pairwise;
          diff_mds_pipelined;
          diff_mds_pipelined_warm;
        ] );
    ]
