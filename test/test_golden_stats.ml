(* Golden-stats differential test (behaviour-preservation harness).

   Records MNIST at fixed seeds in every recorder mode and asserts the full
   [Orchestrate.record_outcome] stat tuple — blob hash, entry count, blocking
   RTTs, sync bytes, commit/speculation counts by category, polling, rollback
   and retransmission counters — against checked-in expected values captured
   before the engine-module refactor. Any behavioural drift in the recorder
   (deferral, speculation, polling offload, memsync, link accounting) shows
   up as a one-line diff here. *)

module O = Grt.Orchestrate
module Mode = Grt.Mode
module Recording = Grt.Recording

let check = Alcotest.check

let tuple_of (o : O.record_outcome) =
  Printf.sprintf
    "blob=%016Lx entries=%d rtts=%d sync_wire=%d sync_raw=%d commits=%d spec=%d cats=[%s] \
     nondet=%d accesses=%d polls=%d/%d rollbacks=%d retransmits=%d linkdowns=%d"
    (Grt_util.Hashing.fnv1a_bytes o.O.blob)
    (Array.length o.O.recording.Recording.entries)
    o.O.blocking_rtts o.O.sync_wire_bytes o.O.sync_raw_bytes o.O.commits_total
    o.O.commits_speculated
    (String.concat ","
       (List.map
          (fun (c, n) -> Printf.sprintf "%s:%d" (Grt.Drivershim.category_name c) n)
          o.O.speculated_by_category))
    o.O.spec_rejected_nondet o.O.accesses_total o.O.poll_instances o.O.poll_offloaded
    o.O.rollbacks o.O.retransmits o.O.link_downs

let record ?history ?window ?config mode =
  O.record ?history ?window ?config ~profile:Grt_net.Profile.wifi ~mode ~sku:Grt_gpu.Sku.g71_mp8
    ~net:Grt_mlfw.Zoo.mnist ~seed:42L ()

(* Expected tuples captured at the current recording format (v2 chunked
   wire format with Merkle-chunked signed header; seed 42, WiFi, MNIST).
   The speculative mode is pinned both cold (empty history) and warm
   (fourth run sharing one history), because the two exercise different
   commit paths. *)
let expected =
  [
    ( "OursM",
      "blob=8a88735bd31e9de5 entries=1024 rtts=980 sync_wire=10103 sync_raw=507904 commits=978 \
       spec=0 cats=[Init:0,Interrupt:0,Power state:0,Polling:0,Other:0] nondet=0 accesses=978 \
       polls=170/0 rollbacks=0 retransmits=0 linkdowns=0" );
    ( "OursMD",
      "blob=220629017c094fd7 entries=1024 rtts=593 sync_wire=10103 sync_raw=507904 commits=591 \
       spec=0 cats=[Init:0,Interrupt:0,Power state:0,Polling:0,Other:0] nondet=0 accesses=978 \
       polls=170/0 rollbacks=0 retransmits=0 linkdowns=0" );
    ( "OursMDS-cold",
      "blob=220629017c094fd7 entries=1024 rtts=62 sync_wire=10103 sync_raw=507904 commits=591 \
       spec=531 cats=[Init:1,Interrupt:40,Power state:46,Polling:319,Other:125] nondet=23 \
       accesses=808 polls=170/170 rollbacks=0 retransmits=0 linkdowns=0" );
    ( "OursMDS-warm",
      "blob=220629017c094fd7 entries=1024 rtts=25 sync_wire=10103 sync_raw=507904 commits=591 \
       spec=568 cats=[Init:7,Interrupt:46,Power state:46,Polling:339,Other:130] nondet=23 \
       accesses=808 polls=170/170 rollbacks=0 retransmits=0 linkdowns=0" );
    (* window=4 + max_inflight=4 pipeline: every outcome stat — above all
       the blob hash — must match the stop-and-wait cold run; window size
       moves only the clock/energy/timing counters, which this tuple
       deliberately excludes. *)
    ( "OursMDS-w4",
      "blob=220629017c094fd7 entries=1024 rtts=62 sync_wire=10103 sync_raw=507904 commits=591 \
       spec=531 cats=[Init:1,Interrupt:40,Power state:46,Polling:319,Other:125] nondet=23 \
       accesses=808 polls=170/170 rollbacks=0 retransmits=0 linkdowns=0" );
    (* memsync fast path (dedup + adaptive encoding): the tagged wire format
       changes the blob and the sync wire accounting, and is pinned as its
       own row — the rows above must stay byte-identical to the seed. *)
    ( "OursMDS-dedup",
      "blob=09badd6a6ad764e3 entries=1024 rtts=62 sync_wire=9070 sync_raw=507904 commits=591 \
       spec=531 cats=[Init:1,Interrupt:40,Power state:46,Polling:319,Other:125] nondet=23 \
       accesses=808 polls=170/170 rollbacks=0 retransmits=0 linkdowns=0" );
  ]

let outcomes () =
  let m = record Mode.Ours_m in
  let md = record Mode.Ours_md in
  let history = Grt.Drivershim.fresh_history () in
  let cold = record ~history Mode.Ours_mds in
  ignore (record ~history Mode.Ours_mds);
  ignore (record ~history Mode.Ours_mds);
  let warm = record ~history Mode.Ours_mds in
  (* Sliding-window pipeline (window=4, max_inflight=4): timing-side
     counters move, the blob must not. *)
  let w4 =
    record
      ~history:(Grt.Drivershim.fresh_history ())
      ~window:4
      ~config:{ (Mode.default_config Mode.Ours_mds) with Mode.max_inflight = 4 }
      Mode.Ours_mds
  in
  let dedup =
    record
      ~history:(Grt.Drivershim.fresh_history ())
      ~config:
        {
          (Mode.default_config Mode.Ours_mds) with
          Mode.memsync_dedup = true;
          memsync_adaptive = true;
        }
      Mode.Ours_mds
  in
  [
    ("OursM", m);
    ("OursMD", md);
    ("OursMDS-cold", cold);
    ("OursMDS-warm", warm);
    ("OursMDS-w4", w4);
    ("OursMDS-dedup", dedup);
  ]

let actuals () = List.map (fun (name, o) -> (name, tuple_of o)) (outcomes ())

let golden () =
  let got = actuals () in
  List.iter
    (fun (name, want) -> check Alcotest.string name want (List.assoc name got))
    expected

(* The tuple pins a 64-bit hash per row; this assertion closes the
   remaining gap by comparing the six signed blobs byte-for-byte. Rows the
   expected table declares hash-equal (deferral and all three speculative
   variants encode the same entry stream) must be [Bytes.equal] — a hash
   collision cannot mask drift — and rows with distinct pinned hashes must
   actually differ. *)
let six_blobs_byte_identical () =
  let blobs = List.map (fun (name, o) -> (name, o.O.blob)) (outcomes ()) in
  let blob name = List.assoc name blobs in
  let hash_of name =
    Scanf.sscanf (List.assoc name expected) "blob=%Lx" (fun h -> h)
  in
  List.iter
    (fun (a, b) ->
      let same_hash = Int64.equal (hash_of a) (hash_of b) in
      check Alcotest.bool
        (Printf.sprintf "%s blob %s %s byte-for-byte" a
           (if same_hash then "==" else "<>")
           b)
        same_hash
        (Bytes.equal (blob a) (blob b)))
    [
      ("OursMD", "OursMDS-cold");
      ("OursMDS-cold", "OursMDS-warm");
      ("OursMDS-cold", "OursMDS-w4");
      ("OursM", "OursMD");
      ("OursMDS-cold", "OursMDS-dedup");
    ];
  (* And each blob's full hash still matches its pinned row (the tuple
     check covers this too; kept here so this test is self-contained). *)
  List.iter
    (fun (name, b) ->
      check Alcotest.int64 (name ^ " blob hash") (hash_of name) (Grt_util.Hashing.fnv1a_bytes b))
    blobs

(* The signed blob must also be stable run-to-run within one process (the
   recorder may not depend on hidden global state). *)
let rerun_stable () =
  let a = record Mode.Ours_md in
  let b = record Mode.Ours_md in
  check Alcotest.string "re-record is identical" (tuple_of a) (tuple_of b)

(* ---- fleet smoke pin: a fixed six-client fleet through the recording
   service (multiplexed scheduler path), with every outcome, blob size and
   — for the sessions that actually record — the signed blob's hash pinned.
   This freezes the service-layer bytes the per-mode rows above cannot see:
   cache keying, coalescing and the shared-store replays. ---- *)

module Service = Grt.Service

let fleet_specs () =
  let spec ?(cfg = Service.fastpath_cfg) ?(net = Grt_mlfw.Zoo.mnist) ?(sku = Grt_gpu.Sku.g71_mp8)
      ~id ~at_ms () =
    {
      Service.client_id = id;
      arrival_ns = Int64.mul (Int64.of_int at_ms) 1_000_000L;
      net;
      sku;
      profile = Grt_net.Profile.wifi;
      cfg;
      inject_fault_after = None;
    }
  in
  [
    spec ~id:0 ~at_ms:0 ();
    (* same key as 0: coalesces with or hits 0's recording *)
    spec ~id:1 ~at_ms:10 ();
    (* distinct keys: second mode config, second network, second SKU *)
    spec ~id:2 ~at_ms:20 ~cfg:(Mode.default_config Mode.Ours_mds) ();
    spec ~id:3 ~at_ms:30 ~net:Grt_mlfw.Zoo.alexnet ();
    spec ~id:4 ~at_ms:40 ~sku:Grt_gpu.Sku.g31_mp2 ();
    (* late same-key arrival: a clean cache hit *)
    spec ~id:5 ~at_ms:120_000 ();
  ]

let fleet_digest () =
  let reports, _ = Service.run (Service.create ()) (fleet_specs ()) in
  String.concat " "
    (List.map
       (fun (r : Service.session_report) ->
         Printf.sprintf "%d:%s:%d%s" r.Service.spec.Service.client_id
           (Service.outcome_name r.Service.outcome)
           r.Service.blob_bytes
           (match r.Service.outcome with
           | Service.Recorded o ->
             Printf.sprintf ":%016Lx" (Grt_util.Hashing.fnv1a_bytes o.O.blob)
           | _ -> ""))
       reports)

let fleet_expected =
  "0:recorded:22802:9e96eaecb70ceddf 1:coalesced:22802 2:recorded:430196:22442473e345f5ed \
   3:recorded:49325:3e169f8dd3369369 4:recorded:21455:0c77276e1b719866 5:coalesced:22802"

let fleet_pin () = check Alcotest.string "fleet smoke digest" fleet_expected (fleet_digest ())

let () =
  (* Capture mode: GOLDEN_CAPTURE=1 prints the actual tuples instead of
     asserting, for refreshing the expected table after an intentional
     behaviour change. *)
  if Sys.getenv_opt "GOLDEN_CAPTURE" <> None then begin
    List.iter (fun (name, t) -> Printf.printf "    (%S, %S);\n" name t) (actuals ());
    Printf.printf "  fleet: %S\n" (fleet_digest ())
  end
  else
    Alcotest.run "grt_golden_stats"
      [
        ( "golden",
          [
            Alcotest.test_case "fixed-seed outcome stats" `Quick golden;
            Alcotest.test_case "six blobs byte-identical" `Quick six_blobs_byte_identical;
            Alcotest.test_case "re-record stability" `Quick rerun_stable;
            Alcotest.test_case "fleet smoke pin" `Quick fleet_pin;
          ] );
      ]
