(* The replay compiler and its streaming verifier: differential equivalence
   against the interpreted replayer (property-tested and across the full
   model zoo), streaming chunk-tamper detection, v1 blob compatibility,
   replay attestation tokens, and the bench-row JSON schema. *)

module Orchestrate = Grt.Orchestrate
module Replayer = Grt.Replayer
module Replay_prog = Grt.Replay_prog
module Recording = Grt.Recording
module Mode = Grt.Mode
module E = Grt.Experiments
module Attestation = Grt_tee.Attestation
module Network = Grt_mlfw.Network
module Zoo = Grt_mlfw.Zoo
module Runner = Grt_mlfw.Runner
module Profile = Grt_net.Profile
module Sku = Grt_gpu.Sku
module Json = Grt_util.Json

let check = Alcotest.check

let sku = Sku.g71_mp8

let record ?(net = Zoo.mnist) () =
  Orchestrate.record ~profile:Profile.wifi ~mode:Mode.Ours_mds ~sku ~net ~seed:42L ()

let mnist_recording = lazy (record ())

let replay_both ?(blob = (Lazy.force mnist_recording).Orchestrate.blob) ~net ~input_seed () =
  let plan = Network.expand net in
  let input = Runner.input_values plan ~seed:input_seed in
  let params = Runner.weight_values plan ~seed:42L in
  let interp = Orchestrate.replay_recording ~sku ~blob ~input ~params ~seed:input_seed () in
  let prog = Orchestrate.compile_recording ~blob () in
  let compiled = Orchestrate.replay_compiled ~sku ~prog ~input ~params ~seed:input_seed () in
  (interp.Orchestrate.r, compiled.Orchestrate.r)

(* Property: for any fresh input, the compiled path is indistinguishable
   from the interpreted one — same output bits, same entry/verification
   counts. The input seed is the whole state space of a replay. *)
let compiled_equals_interpreted_prop =
  QCheck.Test.make ~count:12 ~name:"compiled replay == interpreted replay (any input)"
    QCheck.(map Int64.of_int small_int)
    (fun input_seed ->
      let i, c = replay_both ~net:Zoo.mnist ~input_seed () in
      i.Replayer.output = c.Replayer.output
      && i.Replayer.entries_applied = c.Replayer.entries_applied
      && i.Replayer.reads_verified = c.Replayer.reads_verified
      && i.Replayer.reads_skipped_nondet = c.Replayer.reads_skipped_nondet)

let compiled_bit_identical_all_nets () =
  (* The acceptance bar: bit-identical on every network in the zoo. *)
  List.iter
    (fun net ->
      let o = record ~net () in
      let i, c = replay_both ~blob:o.Orchestrate.blob ~net ~input_seed:7L () in
      check Alcotest.bool (net.Network.name ^ " bit-identical") true
        (i.Replayer.output = c.Replayer.output);
      check Alcotest.int
        (net.Network.name ^ " same entries applied")
        i.Replayer.entries_applied c.Replayer.entries_applied)
    Zoo.all

let warm_session_reuse_stays_identical () =
  (* Compile once, one session, many replays: hints and cached images must
     not change semantics between the cold and warm executions. *)
  let blob = (Lazy.force mnist_recording).Orchestrate.blob in
  let plan = Network.expand Zoo.mnist in
  let params = Runner.weight_values plan ~seed:42L in
  let prog = Orchestrate.compile_recording ~blob () in
  let g, _, _ = Orchestrate.replay_gpushim ~sku ~seed:7L () in
  List.iter
    (fun seed ->
      let input = Runner.input_values plan ~seed in
      let warm = Replayer.replay_compiled ~gpushim:g ~prog ~input ~params () in
      let interp = Orchestrate.replay_recording ~sku ~blob ~input ~params ~seed () in
      check Alcotest.bool
        (Printf.sprintf "warm replay (seed %Ld) bit-identical" seed)
        true
        (warm.Replayer.output = interp.Orchestrate.r.Replayer.output))
    [ 7L; 8L; 7L; 9L; 7L ]

let compile_stats_sensible () =
  let blob = (Lazy.force mnist_recording).Orchestrate.blob in
  let prog = Orchestrate.compile_recording ~blob () in
  let st = Replay_prog.stats prog in
  let rec_t = (Lazy.force mnist_recording).Orchestrate.recording in
  check Alcotest.int "entry count preserved" (Array.length rec_t.Recording.entries)
    st.Replay_prog.entries;
  check Alcotest.bool "write runs fused" true (st.Replay_prog.fused_writes > 0);
  check Alcotest.bool "memory image precompiled" true (st.Replay_prog.static_pages > 0);
  check Alcotest.bool "ops below entries" true (st.Replay_prog.ops < st.Replay_prog.entries);
  check Alcotest.int "v2 wire format" 2 (Replay_prog.wire_version prog)

let streaming_rejects_tampered_chunk () =
  (* v2 layout is header ∥ mac ∥ chunk bodies: flipping the blob's last
     byte corrupts a chunk body but leaves the signed header intact, so
     compilation (header-only verification) must succeed and the executor's
     streaming hash check must catch it mid-replay. *)
  let blob = Bytes.copy (Lazy.force mnist_recording).Orchestrate.blob in
  let last = Bytes.length blob - 1 in
  Bytes.set blob last (Char.chr (Char.code (Bytes.get blob last) lxor 0xFF));
  let prog =
    match Replay_prog.of_blob ~key:Orchestrate.cloud_signing_key blob with
    | Ok p -> p
    | Error e -> Alcotest.fail ("header verification should pass, got: " ^ e)
  in
  let plan = Network.expand Zoo.mnist in
  let input = Runner.input_values plan ~seed:7L in
  let params = Runner.weight_values plan ~seed:42L in
  match Orchestrate.replay_compiled ~sku ~prog ~input ~params ~seed:7L () with
  | _ -> Alcotest.fail "tampered chunk replayed"
  | exception Replayer.Rejected _ -> ()

let tampered_header_rejected_at_compile () =
  let blob = Bytes.copy (Lazy.force mnist_recording).Orchestrate.blob in
  Bytes.set blob 16 '\xFF';
  match Replay_prog.of_blob ~key:Orchestrate.cloud_signing_key blob with
  | Ok _ -> Alcotest.fail "tampered header compiled"
  | Error _ -> ()

let v1_blob_compiles_and_replays () =
  (* Old-format blobs (whole-body MAC, no chunks) still verify, compile and
     replay bit-identically. *)
  let o = Lazy.force mnist_recording in
  let v1 = Recording.sign_v1 ~key:Orchestrate.cloud_signing_key o.Orchestrate.recording in
  let prog =
    match Replay_prog.of_blob ~key:Orchestrate.cloud_signing_key v1 with
    | Ok p -> p
    | Error e -> Alcotest.fail ("v1 blob rejected: " ^ e)
  in
  check Alcotest.int "v1 wire format" 1 (Replay_prog.wire_version prog);
  let i, c = replay_both ~blob:v1 ~net:Zoo.mnist ~input_seed:5L () in
  check Alcotest.bool "v1 compiled bit-identical" true (i.Replayer.output = c.Replayer.output);
  (* And a v1 blob tampered anywhere is rejected up front. *)
  let bad = Bytes.copy v1 in
  Bytes.set bad (Bytes.length bad - 1) '\x00';
  match Replay_prog.of_blob ~key:Orchestrate.cloud_signing_key bad with
  | Ok _ -> Alcotest.fail "tampered v1 blob compiled"
  | Error _ -> ()

let divergence_releases_gpu () =
  (* An exception mid-execution must still reset and release the GPU so the
     session object remains usable for the next replay. *)
  let o = Lazy.force mnist_recording in
  let rec_t = o.Orchestrate.recording in
  let entries = Array.copy rec_t.Recording.entries in
  let patched = ref false in
  Array.iteri
    (fun i e ->
      match e with
      | Recording.Reg_read { reg; value; verify = true } when not !patched ->
        entries.(i) <- Recording.Reg_read { reg; value = Int64.logxor value 0x5L; verify = true };
        patched := true
      | _ -> ())
    entries;
  check Alcotest.bool "found a verified read to corrupt" true !patched;
  let bad_blob =
    Recording.sign ~key:Orchestrate.cloud_signing_key { rec_t with Recording.entries }
  in
  let plan = Network.expand Zoo.mnist in
  let input = Runner.input_values plan ~seed:7L in
  let params = Runner.weight_values plan ~seed:42L in
  let g, _, _ = Orchestrate.replay_gpushim ~sku ~seed:7L () in
  let bad_prog = Orchestrate.compile_recording ~blob:bad_blob () in
  (match Replayer.replay_compiled ~gpushim:g ~prog:bad_prog ~input ~params () with
  | _ -> Alcotest.fail "divergence not detected"
  | exception Replayer.Divergence _ -> ());
  check Alcotest.bool "GPU released after divergence" false (Grt.Gpushim.isolated g);
  (* Same session replays the honest program afterwards. *)
  let prog = Orchestrate.compile_recording ~blob:o.Orchestrate.blob () in
  let r = Replayer.replay_compiled ~gpushim:g ~prog ~input ~params () in
  let interp = Orchestrate.replay_recording ~sku ~blob:o.Orchestrate.blob ~input ~params ~seed:7L () in
  check Alcotest.bool "session reusable after divergence" true
    (r.Replayer.output = interp.Orchestrate.r.Replayer.output)

let attest_token_roundtrip () =
  let o = Lazy.force mnist_recording in
  let prog = Orchestrate.compile_recording ~blob:o.Orchestrate.blob () in
  let root = Replay_prog.root prog in
  let key = Orchestrate.client_attestation_key in
  let token =
    Attestation.make_replay_token ~signing_key:key ~root ~gpu_id:sku.Sku.gpu_id ~entries:1024
      ~nonce:99L
  in
  check Alcotest.bool "token verifies" true
    (Result.is_ok
       (Attestation.verify_replay_token ~verification_key:key ~root ~gpu_id:sku.Sku.gpu_id
          ~nonce:99L token));
  check Alcotest.bool "wrong nonce rejected" true
    (Result.is_error
       (Attestation.verify_replay_token ~verification_key:key ~root ~gpu_id:sku.Sku.gpu_id
          ~nonce:100L token));
  check Alcotest.bool "wrong root rejected" true
    (Result.is_error
       (Attestation.verify_replay_token ~verification_key:key ~root:(Int64.add root 1L)
          ~gpu_id:sku.Sku.gpu_id ~nonce:99L token));
  check Alcotest.bool "tampered signature rejected" true
    (Result.is_error
       (Attestation.verify_replay_token ~verification_key:key ~root ~gpu_id:sku.Sku.gpu_id
          ~nonce:99L
          (Attestation.tamper_replay_token token)))

let root_stable_across_resigning () =
  (* The Merkle root is the recording's identity: re-signing the same log
     yields the same root; changing one entry changes it. *)
  let o = Lazy.force mnist_recording in
  let rec_t = o.Orchestrate.recording in
  let root_of blob =
    match Replay_prog.of_blob ~key:Orchestrate.cloud_signing_key blob with
    | Ok p -> Replay_prog.root p
    | Error e -> Alcotest.fail e
  in
  let r1 = root_of (Recording.sign ~key:Orchestrate.cloud_signing_key rec_t) in
  let r2 = root_of (Recording.sign ~key:Orchestrate.cloud_signing_key rec_t) in
  check Alcotest.int64 "same log, same root" r1 r2;
  let entries = Array.copy rec_t.Recording.entries in
  let patched = ref false in
  Array.iteri
    (fun i e ->
      match e with
      | Recording.Reg_write { reg; value } when not !patched ->
        entries.(i) <- Recording.Reg_write { reg; value = Int64.logxor value 1L };
        patched := true
      | _ -> ())
    entries;
  check Alcotest.bool "found a register write to flip" true !patched;
  let r3 =
    root_of (Recording.sign ~key:Orchestrate.cloud_signing_key { rec_t with Recording.entries })
  in
  check Alcotest.bool "different log, different root" true (not (Int64.equal r1 r3))

let bench_row_json_schema () =
  (* The bench's machine-readable row must carry exactly the printed
     fields, with the types the plotting scripts expect. *)
  let ctx = E.create_ctx () in
  let rows = E.replay_bench ~nets:[ Zoo.mnist ] ~iters:1 ctx in
  check Alcotest.int "one row per net" 1 (List.length rows);
  let row = List.hd rows in
  check Alcotest.bool "bit-identical" true row.E.bit_identical;
  check Alcotest.bool "rates positive" true
    (row.E.interpreted_rps > 0. && row.E.compiled_cold_rps > 0. && row.E.compiled_warm_rps > 0.);
  match E.replay_bench_row_json row with
  | Json.Obj fields ->
    let expect name pred =
      match List.assoc_opt name fields with
      | Some v when pred v -> ()
      | Some _ -> Alcotest.fail (name ^ " has the wrong JSON type")
      | None -> Alcotest.fail (name ^ " missing from JSON row")
    in
    let is_num = function Json.Num _ -> true | _ -> false in
    let is_bool = function Json.Bool _ -> true | _ -> false in
    expect "workload" (function Json.Str "MNIST" -> true | _ -> false);
    List.iter
      (fun f -> expect f is_num)
      [
        "entries";
        "interpreted_rps";
        "compiled_cold_rps";
        "compiled_warm_rps";
        "warm_speedup";
        "fused_writes";
        "static_pages";
        "dynamic_loads";
      ];
    expect "bit_identical" is_bool;
    (* Round-trips through the parser (the bench writes these to disk). *)
    (match Json.parse (Json.to_string (Json.Obj fields)) with
    | Ok _ -> ()
    | Error e -> Alcotest.fail ("row does not re-parse: " ^ e))
  | _ -> Alcotest.fail "row is not a JSON object"

let () =
  Alcotest.run "grt_replay_prog"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest compiled_equals_interpreted_prop;
          Alcotest.test_case "bit-identical on all nets" `Slow compiled_bit_identical_all_nets;
          Alcotest.test_case "warm session reuse" `Quick warm_session_reuse_stays_identical;
          Alcotest.test_case "compile stats" `Quick compile_stats_sensible;
        ] );
      ( "verification",
        [
          Alcotest.test_case "streaming rejects tampered chunk" `Quick
            streaming_rejects_tampered_chunk;
          Alcotest.test_case "tampered header rejected at compile" `Quick
            tampered_header_rejected_at_compile;
          Alcotest.test_case "v1 blob compiles and replays" `Quick v1_blob_compiles_and_replays;
          Alcotest.test_case "divergence releases GPU" `Quick divergence_releases_gpu;
        ] );
      ( "attestation",
        [
          Alcotest.test_case "replay token roundtrip" `Quick attest_token_roundtrip;
          Alcotest.test_case "root stable across resigning" `Quick root_stable_across_resigning;
        ] );
      ("bench", [ Alcotest.test_case "replay bench row JSON" `Slow bench_row_json_schema ]);
    ]
