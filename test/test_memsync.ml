(* Memsync fast-path tests: dirty-page tracking (generation stamps),
   content-addressed dedup, per-page adaptive encoding and the tagged wire
   format — exercised standalone over a sender/receiver memory pair and
   end-to-end on a recorded MNIST session. *)

module Mem = Grt_gpu.Mem
module Mode = Grt.Mode
module Memsync = Grt.Memsync
module Recording = Grt.Recording
module Session = Grt_runtime.Session
module Rng = Grt_util.Rng
module E = Grt.Experiments

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

let region_pages = 16

let mk_pair cfg ~pages =
  let mem_s = Mem.create () and mem_r = Mem.create () in
  let pa = Mem.alloc_pages mem_s pages in
  let sender = Memsync.create cfg and receiver = Memsync.create cfg in
  Memsync.register_region sender
    {
      Memsync.name = "cmd";
      usage = Session.Cmd;
      va = 0x4000_0000L;
      pa;
      model_bytes = pages * Mem.page_size;
      actual_bytes = pages * Mem.page_size;
    };
  (mem_s, mem_r, sender, receiver, Mem.page_of_addr pa)

(* ---- the property: any mutation script, any flag combination ----

   Mutate the sender's region, sync, push the payload across the "wire"
   (the same record list a recording would carry), apply on the receiver —
   repeatedly — and the receiver must end bit-identical. Along the way
   every hash reference must resolve to content the receiver already
   holds (from an earlier full-bodied record, in or before this payload),
   and the payload's wire accounting must equal the sum of its records. *)

let all_flag_combos =
  List.concat_map
    (fun dirty ->
      List.concat_map
        (fun dedup ->
          List.concat_map
            (fun adaptive ->
              List.concat_map
                (fun delta ->
                  List.map
                    (fun compress -> (dirty, dedup, adaptive, delta, compress))
                    [ true; false ])
                [ true; false ])
            [ true; false ])
        [ true; false ])
    [ true; false ]

let cfg_of_combo (dirty, dedup, adaptive, delta, compress) =
  {
    (Mode.default_config Mode.Ours_mds) with
    Mode.memsync_dirty = dirty;
    memsync_dedup = dedup;
    memsync_adaptive = adaptive;
    delta_dumps = delta;
    compress_dumps = compress;
  }

type body_spec = Sparse of (int * int) list | Dense of int | Dup of int

let gen_script =
  let open QCheck2.Gen in
  let body =
    frequency
      [
        (3, map (fun e -> Sparse e) (list_size (int_bound 12) (pair (int_bound 4095) (int_bound 255))));
        (2, map (fun s -> Dense s) small_nat);
        (2, map (fun i -> Dup i) small_nat);
      ]
  in
  list_size (int_range 1 4) (list_size (int_bound 6) (pair (int_bound (region_pages - 1)) body))

let run_script combo script =
  let cfg = cfg_of_combo combo in
  let mem_s, mem_r, sender, receiver, first = mk_pair cfg ~pages:region_pages in
  let pool = ref [] in
  let body_of = function
    | Sparse edits ->
      let b = Bytes.make Mem.page_size '\000' in
      List.iter (fun (i, v) -> Bytes.set b i (Char.chr v)) edits;
      b
    | Dense seed -> Rng.bytes (Rng.create ~seed:(Int64.of_int (seed + 7))) Mem.page_size
    | Dup i -> (
      match !pool with
      | [] -> Bytes.make Mem.page_size 'd'
      | l -> List.nth l (i mod List.length l))
  in
  let recv_hashes = Hashtbl.create 64 in
  let ok = ref true in
  List.iter
    (fun round ->
      List.iter
        (fun (idx, spec) ->
          let b = body_of spec in
          pool := b :: !pool;
          Mem.set_page mem_s (Int64.add first (Int64.of_int idx)) b)
        round;
      let p = Memsync.sync_meta sender mem_s in
      let sum = List.fold_left (fun a (r : Memsync.page_record) -> a + r.Memsync.wire) 0 p.Memsync.records in
      if p.Memsync.wire_bytes <> sum then ok := false;
      List.iter
        (fun (r : Memsync.page_record) ->
          (match r.Memsync.enc with
          | Memsync.Enc_hash_ref ->
            (* reference must resolve from records the receiver decoded
               earlier (previous payloads or earlier in this one) *)
            if not (Hashtbl.mem recv_hashes (Memsync.hash_page r.Memsync.data)) then ok := false
          | _ -> ());
          Hashtbl.replace recv_hashes (Memsync.hash_page r.Memsync.data) ())
        p.Memsync.records;
      Memsync.apply receiver mem_r p)
    script;
  for i = 0 to region_pages - 1 do
    let pfn = Int64.add first (Int64.of_int i) in
    if not (Bytes.equal (Mem.get_page mem_s pfn) (Mem.get_page mem_r pfn)) then ok := false
  done;
  !ok

let memsync_qcheck_reproduces =
  qtest ~count:15 "any mutation script reproduces exactly under every flag combination"
    gen_script
    (fun script -> List.for_all (fun combo -> run_script combo script) all_flag_combos)

(* ---- dirty tracking ---- *)

let addr_of first i = Int64.shift_left (Int64.add first (Int64.of_int i)) Mem.page_shift

let visited_scales_with_dirty () =
  let cfg = Mode.default_config Mode.Ours_mds in
  let mem_s, _mem_r, sender, _receiver, first = mk_pair cfg ~pages:64 in
  let p0 = Memsync.sync_meta sender mem_s in
  check Alcotest.int "first sync examines the whole region" 64 p0.Memsync.visited;
  check Alcotest.int "region size" 64 p0.Memsync.total;
  List.iter (fun i -> Mem.write_u8 mem_s (addr_of first i) 0xAB) [ 1; 7; 42 ];
  let p1 = Memsync.sync_meta sender mem_s in
  check Alcotest.int "revisits only the dirtied pages" 3 p1.Memsync.visited;
  check Alcotest.int "ships the dirtied pages" 3 (List.length p1.Memsync.records);
  check Alcotest.int "scope unchanged" 64 p1.Memsync.total;
  let p2 = Memsync.sync_meta sender mem_s in
  check Alcotest.int "idle sync visits nothing" 0 p2.Memsync.visited

let visited_full_rescan_when_disabled () =
  let cfg = { (Mode.default_config Mode.Ours_mds) with Mode.memsync_dirty = false } in
  let mem_s, _mem_r, sender, _receiver, first = mk_pair cfg ~pages:64 in
  ignore (Memsync.sync_meta sender mem_s);
  List.iter (fun i -> Mem.write_u8 mem_s (addr_of first i) 0xAB) [ 1; 7; 42 ];
  let p = Memsync.sync_meta sender mem_s in
  check Alcotest.int "flag off rescans every meta page" 64 p.Memsync.visited;
  check Alcotest.int "but still ships only the changes" 3 (List.length p.Memsync.records)

(* ---- dedup ---- *)

let dedup_fires_on_reshipped_content () =
  let cfg = { (Mode.default_config Mode.Ours_mds) with Mode.memsync_dedup = true } in
  let mem_s, mem_r, sender, receiver, first = mk_pair cfg ~pages:4 in
  let ship () =
    let p = Memsync.sync_meta sender mem_s in
    Memsync.apply receiver mem_r p;
    p
  in
  ignore (ship ());
  let x = Rng.bytes (Rng.create ~seed:3L) Mem.page_size in
  let y = Rng.bytes (Rng.create ~seed:4L) Mem.page_size in
  Mem.set_page mem_s first x;
  (match (ship ()).Memsync.records with
  | [ r ] when r.Memsync.enc <> Memsync.Enc_hash_ref -> ()
  | _ -> Alcotest.fail "fresh content must ship full-bodied");
  Mem.set_page mem_s first y;
  ignore (ship ());
  Mem.set_page mem_s first x;
  (match (ship ()).Memsync.records with
  | [ r ] ->
    check Alcotest.bool "re-shipped content goes out as a hash reference" true
      (r.Memsync.enc = Memsync.Enc_hash_ref);
    check Alcotest.int "reference body is 8 bytes" 8 (Bytes.length r.Memsync.body);
    if r.Memsync.wire > 16 then Alcotest.failf "reference too expensive: %d" r.Memsync.wire
  | rs -> Alcotest.failf "expected one record, got %d" (List.length rs));
  check Alcotest.bytes "receiver resolved the reference" x (Mem.get_page mem_r first)

let hash_ref_unknown_rejected () =
  let store = Memsync.Store.create () in
  let mem = Mem.create () in
  let body = Bytes.create 8 in
  Bytes.set_int64_le body 0 0xDEAD_BEEFL;
  Alcotest.check_raises "unknown reference fails"
    (Failure "Memsync: hash reference to unknown page content") (fun () ->
      ignore (Memsync.decode_records store mem [ (4L, Memsync.Enc_hash_ref, body) ]))

(* ---- tagged records in recordings ---- *)

let recording_roundtrips_tagged_records () =
  let page = Rng.bytes (Rng.create ~seed:9L) Mem.page_size in
  let href = Bytes.create 8 in
  Bytes.set_int64_le href 0 (Memsync.hash_page page);
  let records =
    [
      (0x80001L, Memsync.Enc_raw, page);
      (0x80002L, Memsync.Enc_raw_rc, Grt_util.Range_coder.encode page);
      (0x80003L, Memsync.Enc_delta, Grt_util.Delta.diff ~old_:(Bytes.make Mem.page_size '\000') ~fresh:page);
      (0x80004L, Memsync.Enc_delta_rc, Bytes.of_string "rc-delta-body");
      (0x80005L, Memsync.Enc_hash_ref, href);
    ]
  in
  let r =
    {
      Recording.workload = "t";
      gpu_id = 0x1L;
      entries = [| Recording.Mem_load_enc { records } |];
      slots = [];
    }
  in
  match Recording.deserialize (Recording.serialize r) with
  | Ok r' ->
    check Alcotest.bool "entries survive the round trip" true
      (r'.Recording.entries = r.Recording.entries);
    check Alcotest.int "page count includes tagged records" 5
      (Recording.count_entries r' `Mem_pages)
  | Error e -> Alcotest.fail e

(* ---- end to end on MNIST ---- *)

let mnist_fastpath_wins_and_replays () =
  let ctx = E.create_ctx () in
  match E.memsync_workload ctx ~net:Grt_mlfw.Zoo.mnist with
  | [ base; fast ] ->
    check Alcotest.bool "baseline recording replays to the native output" true
      base.E.replay_matches;
    check Alcotest.bool "fast-path recording replays to the native output" true
      fast.E.replay_matches;
    if fast.E.down_wire_bytes >= base.E.down_wire_bytes then
      Alcotest.failf "fast path should shrink down wire: %d vs %d" fast.E.down_wire_bytes
        base.E.down_wire_bytes;
    if fast.E.up_wire_bytes > base.E.up_wire_bytes then
      Alcotest.failf "fast path should not grow up wire: %d vs %d" fast.E.up_wire_bytes
        base.E.up_wire_bytes;
    if fast.E.blob_bytes >= base.E.blob_bytes then
      Alcotest.failf "fast path should shrink the recording: %d vs %d" fast.E.blob_bytes
        base.E.blob_bytes;
    (* dirty tracking: the visit count tracks touched pages, not the
       (much larger) total metastate page count *)
    if fast.E.mpages_visited * 2 >= fast.E.mpages_meta then
      Alcotest.failf "visits should scale with dirtied pages: %d of %d" fast.E.mpages_visited
        fast.E.mpages_meta
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let () =
  Alcotest.run "memsync"
    [
      ( "fastpath",
        [
          memsync_qcheck_reproduces;
          Alcotest.test_case "visited scales with dirtied pages" `Quick visited_scales_with_dirty;
          Alcotest.test_case "full rescan when disabled" `Quick visited_full_rescan_when_disabled;
          Alcotest.test_case "dedup re-ships as hash reference" `Quick
            dedup_fires_on_reshipped_content;
          Alcotest.test_case "unknown hash reference rejected" `Quick hash_ref_unknown_rejected;
          Alcotest.test_case "tagged records roundtrip recordings" `Quick
            recording_roundtrips_tagged_records;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "MNIST fast path wins and replays" `Quick mnist_fastpath_wins_and_replays ] );
    ]
