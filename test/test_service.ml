(* Multi-session recording service tests: the virtual-time scheduler (both
   coroutine engines), solo-session identity through the scheduler, the
   content-addressed recording cache (hits, coalescing, LRU eviction +
   cheap re-record through the shared stores), and the interleaving-
   determinism property — N multiplexed sessions produce exactly the blobs
   and counters of the same sessions run sequentially. *)

module Sched = Grt_sim.Sched
module Clock = Grt_sim.Clock
module Counters = Grt_sim.Counters
module Metrics = Grt_sim.Metrics
module Service = Grt.Service
module Orchestrate = Grt.Orchestrate
module Ctx = Grt.Session_ctx
module Mode = Grt.Mode
module Zoo = Grt_mlfw.Zoo
module Sku = Grt_gpu.Sku
module Profile = Grt_net.Profile

let check = Alcotest.check

let backends = List.filter Sched.backend_available [ `Effects; `Threads ]

(* ---- scheduler unit tests, parameterized over the backend ---- *)

(* Tasks resume in global virtual-time order (arrival + private clock),
   regardless of spawn order. *)
let sched_order backend () =
  let s = Sched.create ~backend () in
  let log = ref [] in
  let mk name arrival_ns advance_s =
    let clock = Clock.create () in
    ignore
      (Sched.spawn s ~arrival_ns ~name ~clock (fun () ->
           log := (name ^ ":start") :: !log;
           Clock.advance_s clock advance_s;
           Clock.yield clock;
           log := (name ^ ":end") :: !log))
  in
  (* A enters at 0 and burns 100ms before its yield point; B enters at
     50ms and burns 10ms. B's yield (global 60ms) beats A's (100ms). *)
  mk "A" 0L 0.100;
  mk "B" 50_000_000L 0.010;
  Sched.run s;
  check
    Alcotest.(list string)
    "virtual-time order" [ "A:start"; "B:start"; "B:end"; "A:end" ]
    (List.rev !log);
  check Alcotest.int "every suspension resumed" (Sched.yields s + 2) (Sched.switches s);
  check Alcotest.bool "high-water time is A's end" true (Sched.now_ns s = 100_000_000L)

(* await consumes virtual time: the waiter wakes at the signaller's global
   instant, with its private clock advanced to match. *)
let sched_cond backend () =
  let s = Sched.create ~backend () in
  let cond = Sched.new_cond () in
  let a_clock = Clock.create () in
  let woke_at = ref (-1.0) in
  ignore
    (Sched.spawn s ~name:"waiter" ~clock:a_clock (fun () ->
         Sched.await s cond;
         woke_at := Clock.now_s a_clock));
  let b_clock = Clock.create () in
  ignore
    (Sched.spawn s ~arrival_ns:10_000_000L ~name:"signaller" ~clock:b_clock
       (fun () ->
         Clock.advance_s b_clock 0.020;
         Sched.signal_all s cond));
  Sched.run s;
  (* signaller's global time at the signal: 10ms arrival + 20ms burned *)
  check (Alcotest.float 1e-9) "woke at the signal instant" 0.030 !woke_at

let sched_deadlock backend () =
  let s = Sched.create ~backend () in
  let cond = Sched.new_cond () in
  let clock = Clock.create () in
  ignore (Sched.spawn s ~name:"stuck" ~clock (fun () -> Sched.await s cond));
  match Sched.run s with
  | () -> Alcotest.fail "expected Deadlock"
  | exception Sched.Deadlock [ "stuck" ] -> ()
  | exception Sched.Deadlock names ->
      Alcotest.failf "wrong deadlock set: %s" (String.concat "," names)

(* A raising task is recorded, not propagated; other tasks finish. *)
let sched_failure backend () =
  let s = Sched.create ~backend () in
  let finished = ref false in
  let c1 = Clock.create () and c2 = Clock.create () in
  ignore (Sched.spawn s ~name:"bad" ~clock:c1 (fun () -> failwith "boom"));
  ignore (Sched.spawn s ~name:"good" ~clock:c2 (fun () -> finished := true));
  Sched.run s;
  check Alcotest.bool "good task finished" true !finished;
  match Sched.failures s with
  | [ ("bad", Failure msg, _) ] -> check Alcotest.string "exn carried" "boom" msg
  | fs -> Alcotest.failf "wrong failures: %d entries" (List.length fs)

(* ---- solo identity: one session under the scheduler is byte-identical
   to the same session run directly (golden preservation) ---- *)

let solo_identity backend () =
  let seed = 42L in
  let direct =
    Orchestrate.record ~profile:Profile.wifi ~mode:Mode.Ours_mds
      ~sku:Sku.g71_mp8 ~net:Zoo.mnist ~seed ()
  in
  let cfg = Mode.default_config Mode.Ours_mds in
  let ctx =
    Ctx.create ~cfg ~profile:Profile.wifi ~sku:Sku.g71_mp8 ~net:Zoo.mnist
      ~seed ~granularity:`Monolithic ()
  in
  let pipeline = Orchestrate.Pipeline.create ctx in
  let s = Sched.create ~backend () in
  let result = ref None in
  ignore
    (Sched.spawn s ~name:"solo" ~clock:ctx.Ctx.clock (fun () ->
         result := Some (Orchestrate.Pipeline.run pipeline)));
  Sched.run s;
  match !result with
  | None -> Alcotest.fail "pipeline did not finish"
  | Some o ->
      check Alcotest.bool "blob identical" true
        (Bytes.equal direct.Orchestrate.blob o.Orchestrate.blob);
      check Alcotest.bool "counters identical" true
        (Counters.to_alist direct.Orchestrate.counters
        = Counters.to_alist o.Orchestrate.counters);
      check (Alcotest.float 1e-9) "clock readings identical"
        direct.Orchestrate.total_s o.Orchestrate.total_s

(* ---- service semantics ---- *)

let spec ?(cfg = Service.fastpath_cfg) ?(profile = Profile.wifi)
    ?(sku = Sku.g71_mp8) ?(net = Zoo.mnist) ?fault ~id ~at_ms () =
  {
    Service.client_id = id;
    arrival_ns = Int64.mul (Int64.of_int at_ms) 1_000_000L;
    net;
    sku;
    profile;
    cfg;
    inject_fault_after = fault;
  }

let blob_of = function
  | { Service.outcome = Service.Recorded o; _ } -> Some o.Orchestrate.blob
  | _ -> None

(* The service's recording is the plain Orchestrate.record of the
   key-derived seed — cacheable because it depends on the key alone. *)
let recording_matches_direct () =
  let sp = spec ~id:0 ~at_ms:0 () in
  let reports, _ = Service.run ~sequential:true (Service.create ()) [ sp ] in
  let key =
    Service.cache_key ~cfg:sp.Service.cfg ~sku:sp.Service.sku ~net:sp.Service.net
  in
  let direct =
    Orchestrate.record ~config:sp.Service.cfg ~profile:Profile.wifi
      ~mode:Mode.Ours_mds ~sku:sp.Service.sku ~net:sp.Service.net
      ~seed:(Service.recording_seed key) ()
  in
  match reports with
  | [ r ] -> (
      match blob_of r with
      | Some blob ->
          check Alcotest.bool "blob = direct record of key seed" true
            (Bytes.equal blob direct.Orchestrate.blob)
      | None -> Alcotest.failf "expected Recorded, got %s" (Service.outcome_name r.Service.outcome))
  | rs -> Alcotest.failf "expected 1 report, got %d" (List.length rs)

let second_client_hits () =
  let svc = Service.create () in
  let specs = [ spec ~id:0 ~at_ms:0 (); spec ~id:1 ~at_ms:60_000 () ] in
  let reports, _ = Service.run ~sequential:true svc specs in
  let st = Service.stats svc in
  check Alcotest.int "one recording" 1 st.Service.recordings;
  check Alcotest.int "one hit" 1 st.Service.cache_hits;
  match reports with
  | [ _; hit ] ->
      check Alcotest.bool "second client served" true
        (Service.served hit.Service.outcome);
      check Alcotest.bool "served the recorded bytes" true (hit.Service.blob_bytes > 0)
  | _ -> Alcotest.fail "expected 2 reports"

(* Simultaneous same-key arrivals under the scheduler: exactly one records,
   the rest coalesce onto the in-flight recording. *)
let coalescing backend () =
  let svc = Service.create () in
  let specs = List.init 4 (fun i -> spec ~id:i ~at_ms:i ()) in
  let reports, _ = Service.run ~backend svc specs in
  let st = Service.stats svc in
  check Alcotest.int "one recording" 1 st.Service.recordings;
  check Alcotest.int "rest coalesced" 3 st.Service.coalesced;
  check Alcotest.int "no failures" 0 st.Service.failures;
  List.iteri
    (fun i r ->
      if i > 0 then
        check Alcotest.string "coalesced outcome" "coalesced"
          (Service.outcome_name r.Service.outcome))
    reports

(* LRU eviction at capacity 1 with an A, B, A access pattern: the
   re-recording of A reproduces the evicted blob bit-for-bit (key-derived
   seed), and the per-key shared stores make the re-record cheap — most
   pages ship as cross-store hash references, and the shared speculation
   history hits across the recording epochs. *)
let eviction_rerecord () =
  let svc = Service.create ~cache_capacity:1 () in
  let specs =
    [
      spec ~id:0 ~net:Zoo.mnist ~at_ms:0 ();
      spec ~id:1 ~net:Zoo.alexnet ~at_ms:60_000 ();
      spec ~id:2 ~net:Zoo.mnist ~at_ms:120_000 ();
    ]
  in
  let reports, _ = Service.run ~sequential:true svc specs in
  let st = Service.stats svc in
  check Alcotest.int "all three recorded" 3 st.Service.recordings;
  check Alcotest.int "two evictions" 2 st.Service.evictions;
  match reports with
  | [ a1; _; a2 ] -> (
      match (blob_of a1, blob_of a2) with
      | Some b1, Some b2 ->
          check Alcotest.bool "re-record reproduces the evicted blob" true
            (Bytes.equal b1 b2);
          let g r k = Counters.get_int r.Service.counters (Metrics.name k) in
          check Alcotest.bool "cross-store hash refs on re-record" true
            (g a2 Metrics.Sync_cross_hits > 0);
          check Alcotest.bool "cross-epoch history hits on re-record" true
            (g a2 Metrics.Spec_cross_hits > 0);
          check Alcotest.bool "re-record ships less sync wire" true
            (g a2 Metrics.Sync_down_wire_bytes < g a1 Metrics.Sync_down_wire_bytes)
      | _ -> Alcotest.fail "expected both MNIST sessions to record")
  | _ -> Alcotest.fail "expected 3 reports"

(* ---- interleaving determinism (qcheck): any small fleet, multiplexed on
   any available backend, ≡ the same fleet sequential — same outcomes
   (coalesced ≡ cache hit), same blob bytes, same per-session counters.
   The generator mixes lossy channels (recordings that genuinely collapse,
   exercising the failure retry hand-off), two mode configs per (net, sku)
   (distinct keys in one share group, so the recording turnstile sees
   contention), and bounded cache capacities (eviction, including eviction
   of inflight entries). ---- *)

let gen_fleet =
  let open QCheck2.Gen in
  let nets = [| Zoo.mnist; Zoo.mnist; Zoo.mnist; Zoo.alexnet |] in
  let skus = [| Sku.g71_mp8; Sku.g31_mp2 |] in
  let cfgs = [| Service.fastpath_cfg; Mode.default_config Mode.Ours_mds |] in
  let profiles = [| Profile.wifi; Profile.cellular; Profile.lan |] in
  let client id =
    let* net = oneofa nets in
    let* sku = oneofa skus in
    let* cfg = oneofa cfgs in
    let* base = oneofa profiles in
    let* profile =
      frequency
        [
          (2, return base);
          ( 1,
            let* drop = float_range 0.3 0.8 in
            return (Profile.degrade ~drop_prob:drop base) );
        ]
    in
    let* at_ms = int_bound 40_000 in
    let* fault = opt (int_range 1 3) in
    return (spec ~net ~sku ~cfg ~profile ?fault ~id ~at_ms ())
  in
  let* cap = oneofa [| 0; 0; 1; 2 |] in
  let* n = int_range 2 6 in
  let* specs = flatten_l (List.init n client) in
  return (cap, specs)

let normalized (r : Service.session_report) =
  let outcome =
    match r.Service.outcome with
    | Service.Coalesced -> "served"
    | Service.Cache_hit -> "served"
    | Service.Recorded _ -> "recorded"
    | Service.Failed _ -> "failed"
  in
  (r.Service.spec.Service.client_id, outcome, r.Service.blob_bytes,
   Counters.to_alist r.Service.counters)

let print_fleet (cap, specs) =
  Printf.sprintf "capacity=%d\n%s" cap
    (String.concat "\n"
       (List.map
          (fun (s : Service.client_spec) ->
            Printf.sprintf
              "  client %d at %Ldms: %s/%s cfg=%s profile=%s drop=%.3f fault=%s" s.Service.client_id
              (Int64.div s.Service.arrival_ns 1_000_000L)
              s.Service.net.Grt_mlfw.Network.name s.Service.sku.Sku.name
              (Mode.name s.Service.cfg.Mode.mode
              ^ (if s.Service.cfg.Mode.memsync_dedup then "+dedup" else "")
              ^ if s.Service.cfg.Mode.memsync_adaptive then "+adaptive" else "")
              s.Service.profile.Profile.name s.Service.profile.Profile.faults.Profile.drop_prob
              (match s.Service.inject_fault_after with
              | Some k -> string_of_int k
              | None -> "-"))
          specs))

let dump_mismatch backend seq mux =
  Printf.eprintf "--- %s diverges from sequential ---\n" (Sched.backend_name backend);
  List.iter2
    (fun (id, o1, b1, c1) (_, o2, b2, c2) ->
      if (o1, b1, c1) <> (o2, b2, c2) then begin
        Printf.eprintf "  client %d: seq %s/%d mux %s/%d\n" id o1 b1 o2 b2;
        if c1 <> c2 then
          List.iter
            (fun (k, v) ->
              let v' = try List.assoc k c2 with Not_found -> Int64.min_int in
              if v <> v' then Printf.eprintf "    %s: seq %Ld mux %Ld\n" k v v')
            c1
      end)
    seq mux;
  flush stderr

let interleaving_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:8 ~name:"multiplexed fleet == sequential fleet"
       ~print:print_fleet gen_fleet (fun (cap, specs) ->
         let seq, _ =
           Service.run ~sequential:true (Service.create ~cache_capacity:cap ()) specs
         in
         let seq = List.map normalized seq in
         List.for_all
           (fun backend ->
             let mux, _ =
               Service.run ~backend (Service.create ~cache_capacity:cap ()) specs
             in
             let mux = List.map normalized mux in
             if mux <> seq then dump_mismatch backend seq mux;
             mux = seq)
           backends))

(* ---- failure retry hand-off: a lossy first client whose recording
   collapses must not doom later same-key clients. Sequential mode retries
   at the next same-key arrival; multiplexed mode promotes the first
   coalesced waiter to recorder. Both agree: client 0 fails, client 1
   records, client 2 is served. ---- *)

let lossy = Profile.degrade ~drop_prob:0.75 Profile.wifi

let failed_recording_retries backend () =
  let specs =
    [
      spec ~id:0 ~profile:lossy ~at_ms:0 ();
      spec ~id:1 ~at_ms:1 ();
      spec ~id:2 ~at_ms:2 ();
    ]
  in
  let go ?backend ~sequential () =
    let svc = Service.create () in
    let reports, _ = Service.run ?backend ~sequential svc specs in
    (reports, Service.stats svc)
  in
  let seq, seq_st = go ~sequential:true () in
  check
    Alcotest.(list string)
    "sequential: fail, retry, hit"
    [ "failed"; "recorded"; "cache_hit" ]
    (List.map (fun r -> Service.outcome_name r.Service.outcome) seq);
  let mux, mux_st = go ~backend ~sequential:false () in
  check
    Alcotest.(list string)
    "multiplexed: fail, promoted waiter records, coalesced"
    [ "failed"; "recorded"; "coalesced" ]
    (List.map (fun r -> Service.outcome_name r.Service.outcome) mux);
  check Alcotest.bool "normalized reports identical" true
    (List.map normalized mux = List.map normalized seq);
  check Alcotest.int "one successful recording each" seq_st.Service.recordings
    mux_st.Service.recordings;
  check Alcotest.int "one failure each" seq_st.Service.failures mux_st.Service.failures;
  (* The promoted waiter's blob is the same key-derived artifact a planned
     recorder would have produced. *)
  match (blob_of (List.nth seq 1), blob_of (List.nth mux 1)) with
  | Some b1, Some b2 -> check Alcotest.bool "retry blob identical" true (Bytes.equal b1 b2)
  | _ -> Alcotest.fail "expected the second client to record in both modes"

(* ---- domain-parallel determinism (qcheck): the same fleet sharded by
   share group across 2 or 4 domains ≡ the single-scheduler multiplexed
   run — identical normalized reports (outcome, blob bytes, per-session
   counters), identical recorded-blob digests, identical svc.* totals,
   identical cache listing, and the same virtual-time facts (makespan,
   yields, switches — they are intrinsic per session, not artifacts of
   which scheduler interleaved it). ---- *)

let digested (r : Service.session_report) =
  (normalized r, Option.map Digest.bytes (blob_of r))

let svc_totals svc = Counters.to_alist (Service.service_counters svc)

let dump_domain_mismatch domains base run =
  Printf.eprintf "--- domains=%d diverges from multiplexed ---\n" domains;
  List.iter2
    (fun ((id, o1, b1, _), _) ((_, o2, b2, _), _) ->
      if (o1, b1) <> (o2, b2) then
        Printf.eprintf "  client %d: d1 %s/%d d%d %s/%d\n" id o1 b1 domains o2 b2)
    base run;
  flush stderr

let domain_parallel_deterministic =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count:8 ~name:"domain-sharded fleet == multiplexed fleet"
       ~print:print_fleet gen_fleet (fun (cap, specs) ->
         let go domains =
           let svc = Service.create ~cache_capacity:cap () in
           let reports, rs = Service.run ~domains svc specs in
           ( List.map digested reports,
             svc_totals svc,
             Service.cache_listing svc,
             (rs.Service.rs_virtual_ns, rs.Service.rs_yields, rs.Service.rs_switches) )
         in
         let base, base_totals, base_cache, base_virt = go 1 in
         List.for_all
           (fun domains ->
             let run, totals, cache, virt = go domains in
             if run <> base then dump_domain_mismatch domains base run;
             run = base && totals = base_totals && cache = base_cache
             && virt = base_virt)
           [ 2; 4 ]))

(* ---- promoted-waiter retry across a domain boundary: a lossy MNIST
   group rides one shard while two AlexNet groups fill the others. The
   MNIST shard must still fail client 0, promote client 1 to recorder and
   coalesce client 2 — byte-identical to the single-scheduler run — and
   the 4-domain run must actually have split the fleet into >1 shard. ---- *)

let promoted_waiter_across_domains () =
  let specs =
    [
      spec ~id:0 ~profile:lossy ~at_ms:0 ();
      spec ~id:1 ~at_ms:1 ();
      spec ~id:2 ~at_ms:2 ();
      spec ~id:3 ~net:Zoo.alexnet ~at_ms:5 ();
      spec ~id:4 ~net:Zoo.alexnet ~sku:Sku.g31_mp2 ~at_ms:6 ();
    ]
  in
  let go domains =
    let svc = Service.create () in
    let reports, rs = Service.run ~domains svc specs in
    ( List.map (fun r -> Service.outcome_name r.Service.outcome) reports,
      List.map digested reports,
      Service.stats svc,
      rs )
  in
  let _, d1, st1, _ = go 1 in
  let o4, d4, st4, rs4 = go 4 in
  check
    Alcotest.(list string)
    "d4: fail, promoted waiter records, coalesced; other groups record"
    [ "failed"; "recorded"; "coalesced"; "recorded"; "recorded" ]
    o4;
  check Alcotest.bool "d4 reports byte-identical to d1" true (d4 = d1);
  check Alcotest.int "same recordings" st1.Service.recordings st4.Service.recordings;
  check Alcotest.int "same failures" st1.Service.failures st4.Service.failures;
  check Alcotest.bool "fleet split across shards" true
    (List.length rs4.Service.rs_shards > 1);
  (* three share groups -> at most three shards even with four domains *)
  check Alcotest.int "one shard per share group" 3 (List.length rs4.Service.rs_shards)

(* ---- the observability plane is write-only: same outcomes, same blobs,
   same per-session counters with observe on or off, in both execution
   modes — and the observed run actually collects tracks and samples. ---- *)

let observation_write_only backend () =
  let specs =
    [
      spec ~id:0 ~profile:lossy ~at_ms:0 ();
      spec ~id:1 ~at_ms:1 ();
      spec ~id:2 ~at_ms:2 ();
      spec ~id:3 ~net:Zoo.alexnet ~at_ms:5 ();
    ]
  in
  let go ~sequential ~observe =
    let svc = Service.create ~cache_capacity:1 () in
    let reports, _ = Service.run ~backend ~sequential ~observe svc specs in
    (List.map normalized reports, svc)
  in
  List.iter
    (fun sequential ->
      let mode = if sequential then "seq" else "mux" in
      let off, svc_off = go ~sequential ~observe:false in
      let on, svc_on = go ~sequential ~observe:true in
      check Alcotest.bool (mode ^ ": observe changes no outcome/blob/counter") true (on = off);
      check Alcotest.bool (mode ^ ": unobserved run has no observation") true
        (Service.observation svc_off = None);
      check Alcotest.int (mode ^ ": unobserved run has no tracks") 0
        (List.length (Service.fleet_tracks svc_off));
      (match Service.observation svc_on with
      | None -> Alcotest.fail (mode ^ ": observed run carries an observation")
      | Some obs ->
        check Alcotest.int
          (mode ^ ": turnaround sampled once per session")
          (List.length specs)
          (Grt_sim.Hist.count (Grt_sim.Hist.get obs.Service.obs_hists Grt_sim.Hist.Svc_turnaround_us));
        check Alcotest.int
          (mode ^ ": ttfb sampled once per session")
          (List.length specs)
          (Grt_sim.Hist.count (Grt_sim.Hist.get obs.Service.obs_hists Grt_sim.Hist.Svc_ttfb_us)));
      (* service plane + one track per session (a promoted waiter may add
         a second lane for its client) *)
      check Alcotest.bool (mode ^ ": service + per-session tracks") true
        (List.length (Service.fleet_tracks svc_on) >= 1 + List.length specs))
    [ true; false ]

(* ---- fleet generation ---- *)

let fleet_generation () =
  let opts = { Service.default_fleet with Service.clients = 500 } in
  let specs = Service.zipf_fleet opts in
  check Alcotest.int "population size" 500 (List.length specs);
  let specs' = Service.zipf_fleet opts in
  check Alcotest.bool "generation is deterministic" true (specs = specs');
  (* arrivals are sorted-ready (run sorts anyway) and ids unique *)
  let ids = List.map (fun s -> s.Service.client_id) specs in
  check Alcotest.int "ids unique" 500 (List.length (List.sort_uniq compare ids));
  (* Zipf skew: the most popular (net, sku) pair dominates a uniform share *)
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun s ->
      let k = (s.Service.net.Grt_mlfw.Network.name, s.Service.sku.Sku.name) in
      Hashtbl.replace tbl k (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k)))
    specs;
  let top = Hashtbl.fold (fun _ n acc -> max n acc) tbl 0 in
  check Alcotest.bool "Zipf head dominates" true (top > 500 / 30 * 3)

(* service counters mirror stats *)
let service_counter_view () =
  let svc = Service.create () in
  let specs = [ spec ~id:0 ~at_ms:0 (); spec ~id:1 ~at_ms:60_000 () ] in
  let reports, _ = Service.run ~sequential:true svc specs in
  let c = Service.service_counters svc in
  check Alcotest.int "svc.sessions" 2 (Counters.get_int c "svc.sessions");
  check Alcotest.int "svc.recordings" 1 (Counters.get_int c "svc.recordings");
  check Alcotest.int "svc.cache_hits" 1 (Counters.get_int c "svc.cache_hits");
  let agg = Service.aggregate svc reports in
  check Alcotest.bool "aggregate includes sessions' counters" true
    (Counters.get_int agg "net.blocking_rtts" > 0);
  check Alcotest.int "aggregate includes svc counters" 2
    (Counters.get_int agg "svc.sessions")

let backend_cases name f =
  List.map
    (fun b ->
      Alcotest.test_case (Printf.sprintf "%s (%s)" name (Sched.backend_name b)) `Quick (f b))
    backends

let () =
  Alcotest.run "service"
    [
      ( "sched",
        backend_cases "virtual-time order" sched_order
        @ backend_cases "cond wait advances to signal time" sched_cond
        @ backend_cases "deadlock detected" sched_deadlock
        @ backend_cases "failure isolated" sched_failure );
      ( "identity",
        backend_cases "solo session byte-identical under scheduler" solo_identity
        @ [ Alcotest.test_case "service recording = direct record of key seed" `Quick
              recording_matches_direct ] );
      ( "cache",
        [
          Alcotest.test_case "second client hits" `Quick second_client_hits;
          Alcotest.test_case "eviction + cheap re-record" `Quick eviction_rerecord;
          Alcotest.test_case "service counters + aggregate" `Quick service_counter_view;
        ]
        @ backend_cases "simultaneous arrivals coalesce" coalescing
        @ backend_cases "failed recording promotes a waiter" failed_recording_retries );
      ( "determinism",
        [
          interleaving_deterministic;
          domain_parallel_deterministic;
          Alcotest.test_case "promoted waiter across a domain boundary" `Quick
            promoted_waiter_across_domains;
          Alcotest.test_case "fleet generation" `Quick fleet_generation;
        ] );
      ("observability", backend_cases "observation is write-only" observation_write_only);
    ]
