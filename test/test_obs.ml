(* Observability tests: the JSON codec, log-bucketed histograms, the span
   tracer and its Chrome trace-event export, session reports, and the
   bench-row JSON export (which must mirror the printed tables field for
   field).

   The heavyweight fixture is one observed MNIST record run, shared lazily;
   a paired unobserved run checks the zero-cost contract directly (same
   blob, same counters, same virtual delay). *)

module Json = Grt_util.Json
module Clock = Grt_sim.Clock
module Tracer = Grt_sim.Tracer
module Hist = Grt_sim.Hist
module Trace = Grt_sim.Trace
module E = Grt.Experiments

let check = Alcotest.check

let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- Json: escaping and parse/print round trip ---- *)

let json_escaping () =
  let tricky = "a\"b\\c\nd\te\x01f\x7f\xffg" in
  let s = Json.to_string (Json.Str tricky) in
  (match Json.parse s with
  | Ok (Json.Str back) -> check Alcotest.string "escape round trip" tricky back
  | Ok _ -> Alcotest.fail "parsed to a non-string"
  | Error e -> Alcotest.failf "parse failed: %s" e);
  check Alcotest.string "quote escape" {|"a\"b"|} (Json.escape "a\"b")

let json_rejects_garbage () =
  let bad = [ "1 x"; "[1,]"; "{\"a\":}"; "tru"; "\"unterminated"; "" ] in
  List.iter
    (fun s ->
      match Json.parse s with
      | Ok _ -> Alcotest.failf "accepted %S" s
      | Error _ -> ())
    bad

let json_gen =
  let open QCheck2.Gen in
  sized
  @@ fix (fun self n ->
         let scalar =
           oneof
             [
               return Json.Null;
               map (fun b -> Json.Bool b) bool;
               map (fun i -> Json.Num (float_of_int i)) (int_range (-1_000_000) 1_000_000);
               map (fun f -> Json.Num f) (float_bound_inclusive 1e9);
               map (fun s -> Json.Str s) (string_size (int_bound 16));
             ]
         in
         if n <= 0 then scalar
         else
           oneof
             [
               scalar;
               map (fun l -> Json.Arr l) (list_size (int_bound 4) (self (n / 2)));
               map
                 (fun l -> Json.Obj l)
                 (list_size (int_bound 4) (pair (string_size (int_bound 8)) (self (n / 2))));
             ])

let json_roundtrip =
  qtest ~count:500 "json print/parse round trip" json_gen (fun v ->
      match Json.parse (Json.to_string v) with
      | Ok back -> back = v
      | Error _ -> false)

(* ---- Hist: buckets, quantiles, merge ---- *)

let hist_bucket_boundaries () =
  check Alcotest.int "v=0" 0 (Hist.bucket_index 0);
  check Alcotest.int "v<0" 0 (Hist.bucket_index (-5));
  check Alcotest.int "v=1" 1 (Hist.bucket_index 1);
  (* bucket i >= 1 holds [2^(i-1), 2^i): both edges of each bucket land in
     the same bucket, and the next power of two lands one bucket up. *)
  for i = 1 to 20 do
    let lo = 1 lsl (i - 1) in
    let hi = (1 lsl i) - 1 in
    check Alcotest.int (Printf.sprintf "lo edge %d" lo) i (Hist.bucket_index lo);
    check Alcotest.int (Printf.sprintf "hi edge %d" hi) i (Hist.bucket_index hi);
    check Alcotest.int (Printf.sprintf "next pow2 %d" (hi + 1)) (i + 1) (Hist.bucket_index (hi + 1))
  done

let hist_exact_stats () =
  let h = Hist.create () in
  List.iter (Hist.observe h) [ 3; 17; 17; 1024; 0 ];
  check Alcotest.int "count" 5 (Hist.count h);
  check Alcotest.int64 "sum" 1061L (Hist.sum h);
  check Alcotest.int "min" 0 (Hist.min_value h);
  check Alcotest.int "max" 1024 (Hist.max_value h)

let samples_gen = QCheck2.Gen.(list_size (int_range 1 200) (int_bound 100_000))

let hist_quantile_monotone =
  qtest "quantile monotone and clamped"
    QCheck2.Gen.(pair samples_gen (list_size (int_bound 20) (float_bound_inclusive 1.0)))
    (fun (samples, qs) ->
      let h = Hist.create () in
      List.iter (Hist.observe h) samples;
      let lo = float_of_int (Hist.min_value h) and hi = float_of_int (Hist.max_value h) in
      let qs = List.sort_uniq compare (0.0 :: 1.0 :: qs) in
      let vs = List.map (Hist.quantile h) qs in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone vs && List.for_all (fun v -> v >= lo && v <= hi) vs)

let hist_merge_equals_union =
  qtest "merge = observing the concatenation" QCheck2.Gen.(pair samples_gen samples_gen)
    (fun (xs, ys) ->
      let a = Hist.create () and b = Hist.create () and c = Hist.create () in
      List.iter (Hist.observe a) xs;
      List.iter (Hist.observe b) ys;
      List.iter (Hist.observe c) (xs @ ys);
      Hist.merge ~into:a b;
      Hist.count a = Hist.count c
      && Hist.sum a = Hist.sum c
      && Hist.min_value a = Hist.min_value c
      && Hist.max_value a = Hist.max_value c
      &&
      let rec buckets_equal i =
        i >= Hist.buckets || (Hist.bucket_count a i = Hist.bucket_count c i && buckets_equal (i + 1))
      in
      buckets_equal 0)

let hist_record_opt_none_is_noop () =
  (* The zero-cost path: recording into an absent set must not raise. *)
  Hist.record_opt None Hist.Rtt_ns 123;
  let s = Hist.create_set () in
  Hist.record_opt (Some s) Hist.Rtt_ns 123;
  check Alcotest.int "recorded" 1 (Hist.count (Hist.get s Hist.Rtt_ns))

(* ---- Tracer: self/total attribution, exception safety, Chrome export ---- *)

let tracer_self_total () =
  let clock = Clock.create () in
  let tr = Tracer.create clock in
  Tracer.with_span tr ~cat:Tracer.Commit ~name:"outer" (fun () ->
      Clock.advance_s clock 0.006;
      Tracer.with_span tr ~cat:Tracer.Link_exchange ~name:"inner" (fun () ->
          Clock.advance_s clock 0.004));
  check Alcotest.int "two spans" 2 (Tracer.span_count tr);
  check Alcotest.int "all closed" 0 (Tracer.open_depth tr);
  let commit = List.assoc Tracer.Commit (Tracer.summary tr) in
  let link = List.assoc Tracer.Link_exchange (Tracer.summary tr) in
  check Alcotest.int64 "outer total = 10 ms" 10_000_000L commit.Tracer.total_ns;
  check Alcotest.int64 "outer self = 6 ms" 6_000_000L commit.Tracer.self_ns;
  check Alcotest.int64 "inner self = total = 4 ms" 4_000_000L link.Tracer.self_ns;
  check Alcotest.int "summary covers every category"
    (List.length Tracer.all_categories)
    (List.length (Tracer.summary tr))

let tracer_exception_safety () =
  let clock = Clock.create () in
  let tr = Tracer.create clock in
  Alcotest.check_raises "exception propagates" (Failure "boom") (fun () ->
      Tracer.with_span tr ~cat:Tracer.Rollback_recovery ~name:"outer" (fun () ->
          Tracer.with_span tr ~cat:Tracer.Commit ~name:"inner" (fun () ->
              Clock.advance_s clock 0.001;
              failwith "boom")));
  check Alcotest.int "both spans closed on unwind" 2 (Tracer.span_count tr);
  check Alcotest.int "stack unwound" 0 (Tracer.open_depth tr)

(* Walk a parsed Chrome trace: every "E" must close the matching open "B"
   (same name), instants are self-contained, and the stream ends balanced. *)
let assert_balanced_chrome json_text =
  match Json.parse json_text with
  | Error e -> Alcotest.failf "trace is not valid JSON: %s" e
  | Ok (Json.Arr events) ->
    let str field ev =
      match Json.member field ev with
      | Some (Json.Str s) -> s
      | _ -> Alcotest.failf "event missing %S" field
    in
    let stack =
      List.fold_left
        (fun stack ev ->
          match str "ph" ev with
          | "B" -> str "name" ev :: stack
          | "E" -> (
            match stack with
            | top :: rest ->
              check Alcotest.string "E closes the open B" top (str "name" ev);
              rest
            | [] -> Alcotest.fail "E with no open B")
          | "i" ->
            check Alcotest.string "instant scope" "t" (str "s" ev);
            stack
          | ph -> Alcotest.failf "unexpected phase %S" ph)
        [] events
    in
    check Alcotest.int "stream ends balanced" 0 (List.length stack);
    List.length events
  | Ok _ -> Alcotest.fail "trace is not a JSON array"

let tracer_chrome_export () =
  let clock = Clock.create () in
  let tr = Tracer.create clock in
  Tracer.with_span tr ~cat:Tracer.Establish ~args:[ ("nonce", "a\"b\\c\nd") ] ~name:"establish"
    (fun () ->
      Clock.advance_s clock 0.002;
      Tracer.instant tr ~cat:Tracer.Establish "attested";
      Tracer.with_span tr ~cat:Tracer.Link_exchange ~name:"round_trip" (fun () ->
          Clock.advance_s clock 0.001));
  Tracer.with_span tr ~cat:Tracer.Boot ~name:"boot" (fun () -> Clock.advance_s clock 0.003);
  let n = assert_balanced_chrome (Tracer.to_chrome_json tr) in
  (* 3 spans -> 3 B + 3 E, plus 1 instant. *)
  check Alcotest.int "event count" 7 n

(* ---- Trace: JSONL export of typed events ---- *)

let trace_jsonl () =
  let clock = Clock.create () in
  let t = Trace.create clock in
  Trace.event t (Trace.Retransmit { op = "round_trip"; attempt = 2; outage = false });
  Trace.event t (Trace.Rollback { site = "queue_submit"; reg = "CMD"; predicted = 1L; actual = 2L });
  Trace.emit t ~topic:"test" "free-form \"quoted\"";
  let lines = String.split_on_char '\n' (String.trim (Trace.to_jsonl t)) in
  check Alcotest.int "one line per event" 3 (List.length lines);
  List.iter
    (fun line ->
      match Json.parse line with
      | Ok (Json.Obj fields) ->
        if not (List.mem_assoc "ts_ns" fields && List.mem_assoc "topic" fields) then
          Alcotest.failf "line lacks ts_ns/topic: %s" line
      | Ok _ | Error _ -> Alcotest.failf "bad JSONL line: %s" line)
    lines

(* ---- Session fixture: one observed run, one default run ---- *)

let record ?(observe = false) () =
  Grt.Orchestrate.record ~observe ~profile:Grt_net.Profile.wifi ~mode:Grt.Mode.Ours_mds
    ~sku:Grt_gpu.Sku.g71_mp8 ~net:Grt_mlfw.Zoo.mnist ~seed:42L ()

let observed = lazy (record ~observe:true ())
let default = lazy (record ())

let observation_is_zero_cost () =
  let o = Lazy.force observed and d = Lazy.force default in
  check Alcotest.bool "signed blob identical" true
    (Bytes.equal o.Grt.Orchestrate.blob d.Grt.Orchestrate.blob);
  check (Alcotest.float 0.0) "virtual delay identical" d.Grt.Orchestrate.total_s
    o.Grt.Orchestrate.total_s;
  check
    Alcotest.(list (pair string int64))
    "counters identical"
    (Grt_sim.Counters.to_alist d.Grt.Orchestrate.counters)
    (Grt_sim.Counters.to_alist o.Grt.Orchestrate.counters);
  check Alcotest.bool "default run carries no tracer" true (d.Grt.Orchestrate.tracer = None);
  check Alcotest.bool "default run carries no hists" true (d.Grt.Orchestrate.hists = None)

let session_trace_balanced () =
  let o = Lazy.force observed in
  match o.Grt.Orchestrate.tracer with
  | None -> Alcotest.fail "observed run lost its tracer"
  | Some tr ->
    check Alcotest.int "session unwound cleanly" 0 (Tracer.open_depth tr);
    let n = assert_balanced_chrome (Tracer.to_chrome_json tr) in
    check Alcotest.bool "session produced spans" true (n > 0);
    let establish = List.assoc Tracer.Establish (Tracer.summary tr) in
    let link = List.assoc Tracer.Link_exchange (Tracer.summary tr) in
    check Alcotest.bool "establish traced" true (establish.Tracer.spans > 0);
    check Alcotest.bool "link exchanges traced" true (link.Tracer.spans > 0)

let session_histograms_populated () =
  let o = Lazy.force observed in
  match o.Grt.Orchestrate.hists with
  | None -> Alcotest.fail "observed run lost its histograms"
  | Some hs ->
    let rtt = Hist.get hs Hist.Rtt_ns in
    check Alcotest.bool "RTTs observed" true (Hist.count rtt > 0);
    check Alcotest.bool "RTT p50 positive" true (Hist.quantile rtt 0.5 > 0.);
    let commit = Hist.get hs Hist.Commit_accesses in
    check Alcotest.int "commit batches match the counter"
      o.Grt.Orchestrate.commits_total (Hist.count commit)

let report_of_observed () =
  let o = Lazy.force observed in
  Grt.Report.of_outcome ~workload:"MNIST" ~mode:"OursMDS" ~profile:"wifi" ~seed:42L o

let report_roundtrip_validates () =
  let report = report_of_observed () in
  (match Grt.Report.validate report with
  | Ok () -> ()
  | Error e -> Alcotest.failf "in-memory report invalid: %s" e);
  match Json.parse (Json.to_string report) with
  | Error e -> Alcotest.failf "report does not reparse: %s" e
  | Ok back -> (
    check Alcotest.bool "reparse is exact" true (back = report);
    match Grt.Report.validate back with
    | Ok () -> ()
    | Error e -> Alcotest.failf "reparsed report invalid: %s" e)

let report_validate_rejects () =
  let reject what j =
    match Grt.Report.validate j with
    | Ok () -> Alcotest.failf "accepted %s" what
    | Error _ -> ()
  in
  reject "a non-object" (Json.Arr []);
  reject "a wrong schema" (Json.Obj [ ("schema", Json.Str "nope") ]);
  match report_of_observed () with
  | Json.Obj fields ->
    reject "a report without a summary"
      (Json.Obj (List.filter (fun (k, _) -> k <> "summary") fields));
    reject "a future version"
      (Json.Obj (List.map (fun (k, v) -> if k = "version" then (k, Json.int 99) else (k, v)) fields))
  | _ -> Alcotest.fail "report is not an object"

let contains ~needle hay =
  let n = String.length needle and h = String.length hay in
  let rec go i = i + n <= h && (String.sub hay i n = needle || go (i + 1)) in
  n = 0 || go 0

let report_timeline_renders () =
  let text = Format.asprintf "%a" Grt.Report.pp_timeline (report_of_observed ()) in
  List.iter
    (fun needle ->
      if not (contains ~needle text) then Alcotest.failf "timeline lacks %S:\n%s" needle text)
    [ "session: MNIST"; "phases"; "distributions" ]

(* ---- Multi-track Chrome export: fleet timelines ---- *)

let tracer_multi_track () =
  let mk advance =
    let clock = Clock.create () in
    let tr = Tracer.create clock in
    Tracer.with_span tr ~cat:Tracer.Boot ~name:"boot" (fun () -> Clock.advance_s clock advance);
    Tracer.instant tr ~cat:Tracer.Commit "mark";
    tr
  in
  let track tid name offset_ns tr =
    { Tracer.track_tid = tid; track_name = name; track_offset_ns = offset_ns; track_tracer = tr }
  in
  let tracks =
    [
      track 0 "service" 0L (mk 0.001);
      track 1 "client-0" 5_000_000L (mk 0.002);
      track 2 "client-1" 9_000_000L (mk 0.002);
      (* a promoted waiter re-registers its client's lane: first name wins *)
      track 1 "client-0-dup" 5_000_000L (mk 0.001);
    ]
  in
  match Json.parse (Tracer.tracks_chrome_json tracks) with
  | Error e -> Alcotest.failf "multi-track export is not valid JSON: %s" e
  | Ok (Json.Arr events) ->
    let str field ev =
      match Json.member field ev with Some (Json.Str s) -> s | _ -> "?"
    in
    let inum field ev =
      match Json.member field ev with Some (Json.Num n) -> int_of_float n | _ -> -1
    in
    let metas, spans = List.partition (fun ev -> str "ph" ev = "M") events in
    check Alcotest.int "process_name + one thread_name per distinct tid" 4 (List.length metas);
    let thread_name tid =
      List.filter_map
        (fun ev ->
          if str "name" ev = "thread_name" && inum "tid" ev = tid then
            match Json.member "args" ev with Some a -> Some (str "name" a) | None -> None
          else None)
        metas
    in
    check Alcotest.(list string) "first registration names the lane" [ "client-0" ] (thread_name 1);
    (* per-tid streams are balanced and shifted by the track offset (µs) *)
    List.iter
      (fun (tid, offset_us) ->
        let evs = List.filter (fun ev -> inum "tid" ev = tid) spans in
        let bs = List.filter (fun ev -> str "ph" ev = "B") evs in
        let es = List.filter (fun ev -> str "ph" ev = "E") evs in
        check Alcotest.int (Printf.sprintf "tid %d balanced" tid) (List.length bs)
          (List.length es);
        List.iter
          (fun ev ->
            if inum "ts" ev < offset_us then
              Alcotest.failf "tid %d event at ts=%d before its offset %d" tid (inum "ts" ev)
                offset_us)
          evs)
      [ (0, 0); (1, 5_000); (2, 9_000) ]
  | Ok _ -> Alcotest.fail "multi-track export is not a JSON array"

(* ---- Memo-cache profiling registry ---- *)

let memo_stats_registry () =
  let module M = Grt_util.Memo_stats in
  let m = M.register "test.memo" in
  check Alcotest.bool "register is idempotent" true (M.register "test.memo" == m);
  M.reset_counters ();
  M.miss m;
  M.added m ~bytes:100;
  M.hit m;
  M.hit m;
  M.miss m;
  M.mismatch m;
  M.replaced m ~old_bytes:100 ~bytes:60;
  let s = M.snapshot m in
  check Alcotest.int "hits" 2 s.M.s_hits;
  check Alcotest.int "misses" 2 s.M.s_misses;
  check Alcotest.int "mismatches" 1 s.M.s_mismatches;
  check Alcotest.int "resident entries" 1 s.M.s_resident;
  check Alcotest.int "resident bytes track replacement" 60 s.M.s_resident_bytes;
  M.evicted m ~entries:1;
  let s = M.snapshot m in
  check Alcotest.int "evictions" 1 s.M.s_evictions;
  check Alcotest.int "eviction zeroes the gauge" 0 s.M.s_resident;
  (match M.snap_json s with
  | Json.Obj fields ->
    List.iter
      (fun k ->
        if not (List.mem_assoc k fields) then Alcotest.failf "snap_json lacks %S" k)
      [ "hits"; "misses"; "mismatches"; "evictions"; "resident"; "resident_bytes" ]
  | _ -> Alcotest.fail "snap_json is not an object");
  (* the real hot-path memos report through the registry: a repeated encode
     is a hit on rc.encode *)
  M.reset_counters ();
  let page = Bytes.make 4096 'x' in
  Bytes.set page 17 'y';
  ignore (Grt_util.Range_coder.encode page);
  ignore (Grt_util.Range_coder.encode page);
  let rc =
    match List.find_opt (fun c -> M.name c = "rc.encode") (M.all ()) with
    | Some c -> M.snapshot c
    | None -> Alcotest.fail "rc.encode never registered"
  in
  check Alcotest.bool "second encode hits the memo" true (rc.M.s_hits >= 1)

(* ---- Fleet reports: round trip, rendering, version skew ---- *)

let tiny_fleet =
  lazy
    (let options =
       {
         Grt.Service.default_fleet with
         Grt.Service.clients = 12;
         mean_interarrival_s = 0.2;
         fault_fraction = 0.;
         degraded_fraction = 0.;
       }
     in
     E.fleet ~options ~observe:true ())

let fleet_report_of (row, svc) =
  Grt.Report.of_fleet ~fleet:(E.fleet_row_json row) ~stats:(Grt.Service.stats svc)
    ~memo:(Grt_util.Memo_stats.to_json ())
    ~observation:(Grt.Service.observation svc) ()

let fleet_report_roundtrip () =
  let report = fleet_report_of (Lazy.force tiny_fleet) in
  (match Grt.Report.validate_fleet report with
  | Ok () -> ()
  | Error e -> Alcotest.failf "in-memory fleet report invalid: %s" e);
  match Json.parse (Json.to_string report) with
  | Error e -> Alcotest.failf "fleet report does not reparse: %s" e
  | Ok back -> (
    check Alcotest.bool "reparse is exact" true (back = report);
    match Grt.Report.validate_fleet back with
    | Ok () -> ()
    | Error e -> Alcotest.failf "reparsed fleet report invalid: %s" e)

let fleet_report_renders () =
  let text = Format.asprintf "%a" Grt.Report.pp_fleet (fleet_report_of (Lazy.force tiny_fleet)) in
  List.iter
    (fun needle ->
      if not (contains ~needle text) then Alcotest.failf "fleet view lacks %S:\n%s" needle text)
    [ "hit rate"; "SLO rollup"; "turnaround_us"; "hottest keys"; "memo caches" ];
  (* an unobserved report renders the absent sections as n/a *)
  let _, svc = Lazy.force tiny_fleet in
  let bare =
    Grt.Report.of_fleet
      ~fleet:(Json.Obj [ ("label", Json.Str "x"); ("clients", Json.int 0) ])
      ~stats:(Grt.Service.stats svc) ~observation:None ()
  in
  (match Grt.Report.validate_fleet bare with
  | Ok () -> ()
  | Error e -> Alcotest.failf "unobserved fleet report invalid: %s" e);
  let text = Format.asprintf "%a" Grt.Report.pp_fleet bare in
  if not (contains ~needle:"SLO rollup: n/a" text) then
    Alcotest.failf "unobserved fleet view lacks the n/a fallback:\n%s" text

let report_version_skew () =
  (* a future writer's report: right schema, newer version, sections we
     don't know about — the display path must tolerate it *)
  let future =
    Json.Obj
      [
        ("schema", Json.Str Grt.Report.schema);
        ("version", Json.int 2);
        ("exotic_new_section", Json.Arr [ Json.int 1 ]);
      ]
  in
  (match Grt.Report.validate future with
  | Ok () -> Alcotest.fail "strict validate accepted a future version"
  | Error _ -> ());
  (match Grt.Report.validate_lenient future with
  | Ok () -> ()
  | Error e -> Alcotest.failf "lenient validate rejected version skew: %s" e);
  let text = Format.asprintf "%a" Grt.Report.pp_timeline future in
  List.iter
    (fun needle ->
      if not (contains ~needle text) then
        Alcotest.failf "skewed timeline lacks %S:\n%s" needle text)
    [ "session: n/a"; "summary: n/a" ];
  (* leniency does not mean anything goes *)
  (match Grt.Report.validate_lenient (Json.Obj [ ("schema", Json.Str "nope") ]) with
  | Ok () -> Alcotest.fail "lenient validate accepted a foreign schema"
  | Error _ -> ());
  match
    Grt.Report.validate_lenient
      (Json.Obj [ ("schema", Json.Str Grt.Report.schema); ("version", Json.int 2);
                  ("summary", Json.Str "not an object") ])
  with
  | Ok () -> Alcotest.fail "lenient validate accepted a malformed present section"
  | Error _ -> ()

(* ---- Bench-row JSON mirrors the printed values ---- *)

let num j k = match Json.member k j with Some (Json.Num n) -> n | _ -> nan
let str j k = match Json.member k j with Some (Json.Str s) -> s | _ -> "?"
let bool_ j k = match Json.member k j with Some (Json.Bool b) -> b | _ -> false

let fault_rows_match_json () =
  let ctx = E.create_ctx () in
  let rows = E.fault_campaign ctx ~drops:[ 0.0 ] ~windows:[ 1 ] ~net:Grt_mlfw.Zoo.mnist () in
  check Alcotest.bool "campaign produced rows" true (rows <> []);
  List.iter
    (fun (r : E.fault_row) ->
      let j = E.fault_row_json r in
      check Alcotest.string "profile" r.E.profile_name (str j "profile");
      check Alcotest.int "window" r.E.window (int_of_float (num j "window"));
      check (Alcotest.float 0.0) "drop_prob" r.E.drop_prob (num j "drop_prob");
      check (Alcotest.float 0.0) "total_s" r.E.total_s (num j "total_s");
      check Alcotest.int "retransmits" r.E.retransmits (int_of_float (num j "retransmits"));
      check Alcotest.int "rollbacks" r.E.rollbacks (int_of_float (num j "rollbacks"));
      check Alcotest.bool "blob_identical" r.E.blob_identical (bool_ j "blob_identical"))
    rows

let synthetic_rows_match_json () =
  let t1 : E.table1_row =
    {
      E.workload = "MNIST";
      gpu_jobs = 14;
      rtts_m = 120;
      rtts_md = 30;
      rtts_mds = 7;
      memsync_naive_mb = 12.5;
      memsync_ours_mb = 0.25;
    }
  in
  let j = E.table1_row_json t1 in
  check Alcotest.string "workload" "MNIST" (str j "workload");
  check Alcotest.int "gpu_jobs" 14 (int_of_float (num j "gpu_jobs"));
  check Alcotest.int "rtts_mds" 7 (int_of_float (num j "rtts_mds"));
  check (Alcotest.float 0.0) "memsync_ours_mb" 0.25 (num j "memsync_ours_mb");
  let f7 : E.fig7_row =
    { E.workload = "VGG16"; delays = [ (Grt.Mode.Naive, 100.5); (Grt.Mode.Ours_mds, 12.25) ] }
  in
  let j = E.fig7_row_json f7 in
  (match Json.member "delays_s" j with
  | Some delays ->
    check (Alcotest.float 0.0) "Naive delay" 100.5 (num delays "Naive");
    check (Alcotest.float 0.0) "OursMDS delay" 12.25 (num delays "OursMDS")
  | None -> Alcotest.fail "fig7 row lacks delays_s");
  let t2 : E.table2_row =
    { E.workload = "MNIST"; native_ms = 3.5; replay_ms = 4.0; outputs_match = true }
  in
  let j = E.table2_row_json t2 in
  check (Alcotest.float 0.0) "replay_ms" 4.0 (num j "replay_ms");
  check Alcotest.bool "outputs_match" true (bool_ j "outputs_match")

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "escaping" `Quick json_escaping;
          Alcotest.test_case "rejects garbage" `Quick json_rejects_garbage;
          json_roundtrip;
        ] );
      ( "hist",
        [
          Alcotest.test_case "bucket boundaries" `Quick hist_bucket_boundaries;
          Alcotest.test_case "exact count/sum/min/max" `Quick hist_exact_stats;
          Alcotest.test_case "record_opt None is a no-op" `Quick hist_record_opt_none_is_noop;
          hist_quantile_monotone;
          hist_merge_equals_union;
        ] );
      ( "tracer",
        [
          Alcotest.test_case "self vs total attribution" `Quick tracer_self_total;
          Alcotest.test_case "exception safety" `Quick tracer_exception_safety;
          Alcotest.test_case "chrome export balanced + escaped" `Quick tracer_chrome_export;
          Alcotest.test_case "trace JSONL export" `Quick trace_jsonl;
        ] );
      ( "session",
        [
          Alcotest.test_case "observation is zero-cost" `Quick observation_is_zero_cost;
          Alcotest.test_case "session trace balanced" `Quick session_trace_balanced;
          Alcotest.test_case "histograms populated" `Quick session_histograms_populated;
          Alcotest.test_case "report round-trips and validates" `Quick report_roundtrip_validates;
          Alcotest.test_case "validation rejects malformed reports" `Quick report_validate_rejects;
          Alcotest.test_case "timeline renders" `Quick report_timeline_renders;
        ] );
      ( "fleet",
        [
          Alcotest.test_case "multi-track chrome export" `Quick tracer_multi_track;
          Alcotest.test_case "memo-stats registry" `Quick memo_stats_registry;
          Alcotest.test_case "fleet report round-trips and validates" `Quick fleet_report_roundtrip;
          Alcotest.test_case "fleet report renders (observed + n/a)" `Quick fleet_report_renders;
          Alcotest.test_case "version skew tolerated leniently" `Quick report_version_skew;
        ] );
      ( "bench-json",
        [
          Alcotest.test_case "fault rows match their JSON" `Quick fault_rows_match_json;
          Alcotest.test_case "synthetic rows match their JSON" `Quick synthetic_rows_match_json;
        ] );
    ]
