(* The GatedNet extension workload: recurrent-style static graphs
   (sigmoid/tanh gates, elementwise products) record and replay exactly
   like the paper's CNNs (§2.3 claims this for RNNs without evaluating
   one). Also unit tests for the new elementwise kernels. *)

module Kernels = Grt_gpu.Kernels
module Shader = Grt_gpu.Shader
module Job_desc = Grt_gpu.Job_desc
module Network = Grt_mlfw.Network
module Zoo = Grt_mlfw.Zoo
module Runner = Grt_mlfw.Runner
module Reference = Grt_mlfw.Reference
module Orchestrate = Grt.Orchestrate
module Mode = Grt.Mode
module Profile = Grt_net.Profile
module Sku = Grt_gpu.Sku

let check = Alcotest.check

(* ---- new kernels ---- *)

(* A float-array view over a Kernels.Flat store: [exec] loads the array
   (rounded to f32, as GPU memory stores it), runs the job, and reads the
   whole space back so tests keep asserting on plain array cells. *)
let flat_ctx n =
  let arr = Array.make n 0.0 in
  let exec d =
    let flat = Kernels.Flat.create () in
    Array.iteri (fun i v -> Kernels.Flat.write_f32 flat (Int64.of_int (4 * i)) v) arr;
    Kernels.execute (Kernels.Flat.ctx flat) d;
    for i = 0 to n - 1 do
      arr.(i) <- Kernels.Flat.read_f32 flat (Int64.of_int (4 * i))
    done
  in
  (arr, exec)

let elementwise_desc op =
  {
    Job_desc.op;
    shader_va = 0L;
    input_va = 0L;
    input2_va = 64L;
    bias_va = 0L;
    output_va = 128L;
    params =
      { Job_desc.default_params with Job_desc.in_c = 4; in_h = 1; in_w = 1; out_c = 4; out_h = 1; out_w = 1 };
    next_va = 0L;
  }

let kernel_tanh () =
  let arr, exec = flat_ctx 64 in
  List.iteri (fun i v -> arr.(i) <- v) [ -100.0; 0.0; 0.5; 100.0 ];
  exec (elementwise_desc Shader.Tanh);
  check (Alcotest.float 1e-6) "tanh(-inf)" (-1.0) arr.(32);
  check (Alcotest.float 1e-6) "tanh(0)" 0.0 arr.(33);
  check (Alcotest.float 1e-6) "tanh(0.5)" (tanh 0.5) arr.(34);
  check (Alcotest.float 1e-6) "tanh(+inf)" 1.0 arr.(35)

let kernel_sigmoid () =
  let arr, exec = flat_ctx 64 in
  List.iteri (fun i v -> arr.(i) <- v) [ -100.0; 0.0; 1.0; 100.0 ];
  exec (elementwise_desc Shader.Sigmoid);
  check (Alcotest.float 1e-6) "sigmoid(-inf)" 0.0 arr.(32);
  check (Alcotest.float 1e-6) "sigmoid(0)" 0.5 arr.(33);
  check (Alcotest.float 1e-6) "sigmoid(1)" (1.0 /. (1.0 +. exp (-1.0))) arr.(34);
  check (Alcotest.float 1e-6) "sigmoid(+inf)" 1.0 arr.(35)

let kernel_mul () =
  let arr, exec = flat_ctx 64 in
  List.iteri (fun i v -> arr.(i) <- v) [ 1.0; -2.0; 3.0; 0.5 ];
  List.iteri (fun i v -> arr.(16 + i) <- v) [ 4.0; 5.0; -6.0; 0.0 ];
  exec (elementwise_desc Shader.Mul);
  check (Alcotest.float 1e-6) "1*4" 4.0 arr.(32);
  check (Alcotest.float 1e-6) "-2*5" (-10.0) arr.(33);
  check (Alcotest.float 1e-6) "3*-6" (-18.0) arr.(34);
  check (Alcotest.float 1e-6) "0.5*0" 0.0 arr.(35)

let new_ops_roundtrip () =
  List.iter
    (fun op ->
      match Shader.op_of_code (Shader.op_code op) with
      | Some op' when op = op' -> ()
      | _ -> Alcotest.failf "%s does not roundtrip" (Shader.op_name op))
    [ Shader.Tanh; Shader.Sigmoid; Shader.Mul ]

(* ---- the workload ---- *)

let plan = lazy (Network.expand Zoo.gatednet)

let gatednet_structure () =
  let p = Lazy.force plan in
  check Alcotest.int "job count" (Network.job_count Zoo.gatednet) (List.length p.Network.jobs);
  let has op = List.exists (fun (j : Network.job_spec) -> j.Network.op = op) p.Network.jobs in
  check Alcotest.bool "uses sigmoid" true (has Shader.Sigmoid);
  check Alcotest.bool "uses tanh" true (has Shader.Tanh);
  check Alcotest.bool "uses mul gates" true (has Shader.Mul)

let gatednet_native_matches_reference () =
  let p = Lazy.force plan in
  let input = Runner.input_values p ~seed:3L in
  let clock = Grt_sim.Clock.create () in
  let r =
    Grt.Native.run_inference ~clock ~sku:Sku.g71_mp8 ~net:Zoo.gatednet ~seed:3L ~input ()
  in
  let weights = Runner.weight_values p ~seed:3L in
  let expected = Reference.run p ~weights ~input in
  Array.iteri
    (fun i v ->
      if abs_float (v -. r.Grt.Native.output.(i)) > 1e-5 then
        Alcotest.failf "output[%d]: gpu %f vs ref %f" i r.Grt.Native.output.(i) v)
    expected;
  (* The head is a softmax: a proper distribution. *)
  let sum = Array.fold_left ( +. ) 0.0 r.Grt.Native.output in
  check (Alcotest.float 1e-4) "softmax" 1.0 sum

let gatednet_records_and_replays () =
  (* The §2.3 property, for a gated recurrent graph: one dry run records
     everything; fresh inputs replay bit-exactly. *)
  let o =
    Orchestrate.record ~profile:Profile.wifi ~mode:Mode.Ours_mds ~sku:Sku.g71_mp8
      ~net:Zoo.gatednet ~seed:3L ()
  in
  let p = Lazy.force plan in
  let params = Runner.weight_values p ~seed:3L in
  List.iter
    (fun seed ->
      let input = Runner.input_values p ~seed in
      let ro =
        Orchestrate.replay_recording ~sku:Sku.g71_mp8 ~blob:o.Orchestrate.blob ~input ~params
          ~seed ()
      in
      let clock = Grt_sim.Clock.create () in
      let nat =
        Grt.Native.run_inference ~clock ~sku:Sku.g71_mp8 ~net:Zoo.gatednet ~seed:3L ~input ()
      in
      check Alcotest.bool
        (Printf.sprintf "bit-exact replay (input seed %Ld)" seed)
        true
        (ro.Orchestrate.r.Grt.Replayer.output = nat.Grt.Native.output))
    [ 8L; 9L ]

let gatednet_not_in_paper_tables () =
  check Alcotest.int "paper zoo unchanged" 6 (List.length Zoo.all);
  check Alcotest.int "extensions visible" 7 (List.length Zoo.all_with_extensions);
  check Alcotest.bool "findable" true (Zoo.find "GatedNet" = Some Zoo.gatednet)

let () =
  Alcotest.run "grt_gatednet"
    [
      ( "kernels",
        [
          Alcotest.test_case "tanh" `Quick kernel_tanh;
          Alcotest.test_case "sigmoid" `Quick kernel_sigmoid;
          Alcotest.test_case "mul" `Quick kernel_mul;
          Alcotest.test_case "opcodes roundtrip" `Quick new_ops_roundtrip;
        ] );
      ( "workload",
        [
          Alcotest.test_case "structure" `Quick gatednet_structure;
          Alcotest.test_case "native = reference" `Quick gatednet_native_matches_reference;
          Alcotest.test_case "records and replays" `Quick gatednet_records_and_replays;
          Alcotest.test_case "paper tables unchanged" `Quick gatednet_not_in_paper_tables;
        ] );
    ]
