(* Tests for the simulation substrate: virtual clock, counters, energy
   meter, trace ring and the cost-constant invariants the model relies on. *)

module Clock = Grt_sim.Clock
module Counters = Grt_sim.Counters
module Energy = Grt_sim.Energy
module Trace = Grt_sim.Trace
module Costs = Grt_sim.Costs

let check = Alcotest.check

(* ---- Clock ---- *)

let clock_starts_at_zero () =
  let c = Clock.create () in
  check Alcotest.int64 "zero" 0L (Clock.now_ns c);
  check (Alcotest.float 1e-12) "zero s" 0.0 (Clock.now_s c)

let clock_advances () =
  let c = Clock.create () in
  Clock.advance_ns c 1500L;
  Clock.advance_s c 0.5e-6;
  check Alcotest.int64 "sum" 2000L (Clock.now_ns c)

let clock_rejects_negative () =
  let c = Clock.create () in
  Alcotest.check_raises "negative" (Invalid_argument "Clock.advance_ns: negative delta")
    (fun () -> Clock.advance_ns c (-1L))

let clock_advance_to () =
  let c = Clock.create () in
  Clock.advance_ns c 100L;
  Clock.advance_to c 50L;
  check Alcotest.int64 "no backwards move" 100L (Clock.now_ns c);
  Clock.advance_to c 400L;
  check Alcotest.int64 "forward" 400L (Clock.now_ns c)

let clock_observers () =
  let c = Clock.create () in
  let total = ref 0L in
  Clock.on_advance c (fun old_now new_now -> total := Int64.add !total (Int64.sub new_now old_now));
  Clock.advance_ns c 10L;
  Clock.advance_ns c 0L;
  (* zero advance must not fire *)
  Clock.advance_ns c 32L;
  check Alcotest.int64 "observer saw all time" 42L !total

let clock_time_span () =
  let c = Clock.create () in
  let v, span =
    Clock.time c (fun () ->
        Clock.advance_s c 0.25;
        "done")
  in
  check Alcotest.string "value" "done" v;
  check (Alcotest.float 1e-9) "span" 0.25 (Clock.span_s span)

(* ---- Counters ---- *)

let counters_basic () =
  let t = Counters.create () in
  Counters.incr t "a";
  Counters.add t "a" 4;
  Counters.add64 t "b" 7L;
  check Alcotest.int64 "a" 5L (Counters.get t "a");
  check Alcotest.int64 "b" 7L (Counters.get t "b");
  check Alcotest.int64 "missing is zero" 0L (Counters.get t "zzz");
  check Alcotest.int "get_int" 5 (Counters.get_int t "a")

let counters_alist_sorted () =
  let t = Counters.create () in
  Counters.incr t "zeta";
  Counters.incr t "alpha";
  check (Alcotest.list Alcotest.string) "sorted keys" [ "alpha"; "zeta" ]
    (List.map fst (Counters.to_alist t))

let counters_merge () =
  let a = Counters.create () and b = Counters.create () in
  Counters.add a "x" 2;
  Counters.add b "x" 3;
  Counters.add b "y" 1;
  Counters.merge_into ~dst:a ~src:b;
  check Alcotest.int64 "merged x" 5L (Counters.get a "x");
  check Alcotest.int64 "merged y" 1L (Counters.get a "y")

let counters_reset () =
  let t = Counters.create () in
  Counters.incr t "a";
  Counters.reset t;
  check Alcotest.int64 "reset" 0L (Counters.get t "a")

(* ---- Metrics (typed registry over Counters) ---- *)

let metrics_write_through () =
  let c = Counters.create () in
  let m = Grt_sim.Metrics.of_counters c in
  Grt_sim.Metrics.incr m Grt_sim.Metrics.Net_blocking_rtts;
  Grt_sim.Metrics.add m Grt_sim.Metrics.Net_blocking_rtts 2;
  Grt_sim.Metrics.add64 m Grt_sim.Metrics.Sync_down_wire_bytes 40L;
  (* Typed writes land on the legacy counter names... *)
  check Alcotest.int64 "legacy name sees typed writes" 3L (Counters.get c "net.blocking_rtts");
  check Alcotest.int64 "bytes" 40L (Counters.get c "sync.down_wire_bytes");
  (* ...and typed reads see stringly writes, because it is the same set. *)
  Counters.add c "net.blocking_rtts" 1;
  check Alcotest.int "typed read" 4 (Grt_sim.Metrics.get_int m Grt_sim.Metrics.Net_blocking_rtts);
  check Alcotest.bool "same underlying set" true (Grt_sim.Metrics.to_counters m == c)

let metrics_names_roundtrip () =
  List.iter
    (fun key ->
      match Grt_sim.Metrics.of_name (Grt_sim.Metrics.name key) with
      | Some k -> check Alcotest.bool "roundtrip" true (k = key)
      | None -> Alcotest.failf "of_name failed for %s" (Grt_sim.Metrics.name key))
    Grt_sim.Metrics.all;
  check (Alcotest.option Alcotest.reject) "unknown name" None
    (Grt_sim.Metrics.of_name "no.such.counter");
  (* Legacy names must stay unique or two keys would alias one counter. *)
  let names = List.map Grt_sim.Metrics.name Grt_sim.Metrics.all in
  check Alcotest.int "names unique" (List.length names)
    (List.length (List.sort_uniq compare names))

let metrics_pp_matches_counters () =
  (* The typed registry is a write-through view, so its dump must be the
     counter dump, byte for byte. *)
  let c = Counters.create () in
  let m = Grt_sim.Metrics.of_counters c in
  Grt_sim.Metrics.add m Grt_sim.Metrics.Net_blocking_rtts 7;
  Grt_sim.Metrics.add64 m Grt_sim.Metrics.Sync_up_wire_bytes 1234L;
  Counters.add c "custom.outside_typed_set" 5;
  check Alcotest.string "pp byte-identical"
    (Format.asprintf "%a" Counters.pp c)
    (Format.asprintf "%a" Grt_sim.Metrics.pp m)

(* ---- Energy ---- *)

let energy_base_rail_integrates () =
  let c = Clock.create () in
  let e = Energy.create c in
  Clock.advance_s c 2.0;
  check (Alcotest.float 1e-9) "soc base only"
    (2.0 *. Energy.rail_power_w Energy.Soc_base)
    (Energy.total_j e)

let energy_rail_toggling () =
  let c = Clock.create () in
  let e = Energy.create c in
  Energy.set_active e Energy.Gpu_busy true;
  Clock.advance_s c 1.0;
  Energy.set_active e Energy.Gpu_busy false;
  Clock.advance_s c 1.0;
  let by_rail = Energy.by_rail_j e in
  check (Alcotest.float 1e-9) "gpu for 1s"
    (Energy.rail_power_w Energy.Gpu_busy)
    (List.assoc Energy.Gpu_busy by_rail)

let energy_with_rail_restores () =
  let c = Clock.create () in
  let e = Energy.create c in
  (try Energy.with_rail e Energy.Cpu_busy (fun () -> failwith "boom") with Failure _ -> ());
  Clock.advance_s c 1.0;
  check (Alcotest.float 1e-9) "cpu rail off after exception" 0.0
    (List.assoc Energy.Cpu_busy (Energy.by_rail_j e))

let energy_charge_j () =
  let c = Clock.create () in
  let e = Energy.create c in
  Energy.charge_j e Energy.Radio_tx 1.5;
  check (Alcotest.float 1e-9) "direct charge" 1.5 (List.assoc Energy.Radio_tx (Energy.by_rail_j e))

let energy_reset () =
  let c = Clock.create () in
  let e = Energy.create c in
  Clock.advance_s c 1.0;
  Energy.reset e;
  check (Alcotest.float 1e-9) "reset" 0.0 (Energy.total_j e)

(* ---- Trace ---- *)

let trace_recent_order () =
  let c = Clock.create () in
  let t = Trace.create ~capacity:8 c in
  Trace.emit t ~topic:"a" "first";
  Clock.advance_ns c 5L;
  Trace.emit t ~topic:"b" "second";
  match Trace.recent t 2 with
  | [ e2; e1 ] ->
    check Alcotest.string "most recent first" "second" (Trace.detail e2);
    check Alcotest.string "older second" "first" (Trace.detail e1);
    check Alcotest.int64 "timestamped" 5L e2.Trace.at_ns
  | _ -> Alcotest.fail "expected two events"

let trace_topic_filter () =
  let c = Clock.create () in
  let t = Trace.create c in
  Trace.emit t ~topic:"x" "1";
  Trace.emit t ~topic:"y" "2";
  Trace.emit t ~topic:"x" "3";
  check Alcotest.int "filtered" 2 (List.length (Trace.recent ~topic:"x" t 10))

let trace_ring_eviction () =
  let c = Clock.create () in
  let t = Trace.create ~capacity:4 c in
  for i = 1 to 10 do
    Trace.emitf t ~topic:"n" "%d" i
  done;
  check Alcotest.int "total counts all" 10 (Trace.count t);
  let recents = Trace.recent t 10 in
  check Alcotest.int "bounded by capacity" 4 (List.length recents);
  check Alcotest.string "newest survives" "10" (Trace.detail (List.hd recents))

(* ---- Costs ---- *)

let costs_sane () =
  (* The entire delay model rests on MMIO being orders of magnitude cheaper
     than a WiFi RTT; guard that relationship. *)
  check Alcotest.bool "mmio << 1ms" true (Int64.compare Costs.mmio_access_ns 1_000_000L < 0);
  check Alcotest.bool "jit is macroscopic" true
    (Int64.compare Costs.jit_compile_ns_per_kernel 1_000_000L > 0);
  check Alcotest.bool "replayer step < driver submit" true
    (Int64.compare Costs.replayer_step_ns Costs.driver_submit_overhead_ns < 0);
  check Alcotest.bool "gpu throughput positive" true (Costs.gpu_flops_per_s > 1e9)

let () =
  Alcotest.run "grt_sim"
    [
      ( "clock",
        [
          Alcotest.test_case "starts at zero" `Quick clock_starts_at_zero;
          Alcotest.test_case "advances" `Quick clock_advances;
          Alcotest.test_case "rejects negative" `Quick clock_rejects_negative;
          Alcotest.test_case "advance_to" `Quick clock_advance_to;
          Alcotest.test_case "observers" `Quick clock_observers;
          Alcotest.test_case "time span" `Quick clock_time_span;
        ] );
      ( "counters",
        [
          Alcotest.test_case "basic" `Quick counters_basic;
          Alcotest.test_case "alist sorted" `Quick counters_alist_sorted;
          Alcotest.test_case "merge" `Quick counters_merge;
          Alcotest.test_case "reset" `Quick counters_reset;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "write-through bridge" `Quick metrics_write_through;
          Alcotest.test_case "name roundtrip" `Quick metrics_names_roundtrip;
          Alcotest.test_case "pp matches Counters.pp" `Quick metrics_pp_matches_counters;
        ] );
      ( "energy",
        [
          Alcotest.test_case "base rail integrates" `Quick energy_base_rail_integrates;
          Alcotest.test_case "rail toggling" `Quick energy_rail_toggling;
          Alcotest.test_case "with_rail restores" `Quick energy_with_rail_restores;
          Alcotest.test_case "direct charge" `Quick energy_charge_j;
          Alcotest.test_case "reset" `Quick energy_reset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "recent order" `Quick trace_recent_order;
          Alcotest.test_case "topic filter" `Quick trace_topic_filter;
          Alcotest.test_case "ring eviction" `Quick trace_ring_eviction;
        ] );
      ("costs", [ Alcotest.test_case "sane relationships" `Quick costs_sane ]);
    ]
