(* Unit and property tests for Grt_util: RNG, byte buffers, hashing, the
   range coder, the delta codec and symbolic expressions. *)

module Rng = Grt_util.Rng
module Byte_buf = Grt_util.Byte_buf
module Hashing = Grt_util.Hashing
module Range_coder = Grt_util.Range_coder
module Delta = Grt_util.Delta
module Sexpr = Grt_util.Sexpr

let check = Alcotest.check
let qtest ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen prop)

(* ---- Rng ---- *)

let rng_deterministic () =
  let a = Rng.create ~seed:1234L and b = Rng.create ~seed:1234L in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.next64 a) (Rng.next64 b)
  done

let rng_seed_sensitivity () =
  let a = Rng.create ~seed:1L and b = Rng.create ~seed:2L in
  check Alcotest.bool "different streams" false (Int64.equal (Rng.next64 a) (Rng.next64 b))

let rng_int_bounds () =
  let r = Rng.create ~seed:99L in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.failf "out of range: %d" v
  done

let rng_int_rejects_nonpositive () =
  let r = Rng.create ~seed:1L in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

let rng_float_bounds () =
  let r = Rng.create ~seed:5L in
  for _ = 1 to 10_000 do
    let v = Rng.float r 2.5 in
    if v < 0.0 || v >= 2.5 then Alcotest.failf "out of range: %f" v
  done

let rng_int64_range () =
  let r = Rng.create ~seed:5L in
  for _ = 1 to 1000 do
    let v = Rng.int64_range r (-10L) 10L in
    if Int64.compare v (-10L) < 0 || Int64.compare v 10L >= 0 then
      Alcotest.failf "out of range: %Ld" v
  done

let rng_copy_independent () =
  let a = Rng.create ~seed:7L in
  ignore (Rng.next64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.next64 a) (Rng.next64 b)

let rng_split_diverges () =
  let a = Rng.create ~seed:7L in
  let b = Rng.split a in
  check Alcotest.bool "split stream differs" false (Int64.equal (Rng.next64 a) (Rng.next64 b))

let rng_bytes_len () =
  let r = Rng.create ~seed:3L in
  check Alcotest.int "bytes length" 133 (Bytes.length (Rng.bytes r 133))

(* ---- Byte_buf ---- *)

let byte_buf_primitives () =
  let b = Byte_buf.create () in
  Byte_buf.add_u8 b 0xAB;
  Byte_buf.add_u16 b 0xBEEF;
  Byte_buf.add_u32 b 0xDEADBEEF;
  Byte_buf.add_i64 b (-42L);
  Byte_buf.add_string b "hello";
  let r = Byte_buf.Reader.of_bytes (Byte_buf.contents b) in
  check Alcotest.int "u8" 0xAB (Byte_buf.Reader.u8 r);
  check Alcotest.int "u16" 0xBEEF (Byte_buf.Reader.u16 r);
  check Alcotest.int "u32" 0xDEADBEEF (Byte_buf.Reader.u32 r);
  check Alcotest.int64 "i64" (-42L) (Byte_buf.Reader.i64 r);
  check Alcotest.string "string" "hello" (Byte_buf.Reader.string r);
  check Alcotest.int "fully consumed" 0 (Byte_buf.Reader.remaining r)

let byte_buf_varint_roundtrip () =
  List.iter
    (fun v ->
      let b = Byte_buf.create () in
      Byte_buf.add_varint b v;
      let r = Byte_buf.Reader.of_bytes (Byte_buf.contents b) in
      check Alcotest.int (Printf.sprintf "varint %d" v) v (Byte_buf.Reader.varint r))
    [ 0; 1; 127; 128; 255; 300; 16383; 16384; 1_000_000; max_int / 2 ]

let byte_buf_varint_negative () =
  let b = Byte_buf.create () in
  Alcotest.check_raises "negative rejected" (Invalid_argument "Byte_buf.add_varint: negative")
    (fun () -> Byte_buf.add_varint b (-1))

let byte_buf_truncation () =
  let r = Byte_buf.Reader.of_bytes (Bytes.create 2) in
  ignore (Byte_buf.Reader.u16 r);
  Alcotest.check_raises "truncated" (Failure "Byte_buf.Reader: truncated input") (fun () ->
      ignore (Byte_buf.Reader.u8 r))

let byte_buf_growth () =
  let b = Byte_buf.create ~capacity:1 () in
  for i = 0 to 9999 do
    Byte_buf.add_u8 b (i land 0xFF)
  done;
  check Alcotest.int "length" 10000 (Byte_buf.length b);
  let c = Byte_buf.contents b in
  check Alcotest.int "content survives growth" 0x0F (Char.code (Bytes.get c 0x0F))

let byte_buf_clear () =
  let b = Byte_buf.create () in
  Byte_buf.add_u32 b 7;
  Byte_buf.clear b;
  check Alcotest.int "cleared" 0 (Byte_buf.length b)

(* ---- Hashing ---- *)

let hashing_stable () =
  check Alcotest.int64 "fnv1a of empty" (Hashing.fnv1a_string "")
    (Hashing.fnv1a_bytes Bytes.empty);
  check Alcotest.bool "distinct inputs differ" false
    (Int64.equal (Hashing.fnv1a_string "abc") (Hashing.fnv1a_string "abd"))

let hashing_sub_consistent () =
  let b = Bytes.of_string "hello world" in
  check Alcotest.int64 "sub = whole" (Hashing.fnv1a_bytes b)
    (Hashing.fnv1a_sub b ~pos:0 ~len:(Bytes.length b));
  check Alcotest.bool "different slice differs" false
    (Int64.equal (Hashing.fnv1a_sub b ~pos:0 ~len:5) (Hashing.fnv1a_sub b ~pos:6 ~len:5))

let hashing_hmac_keys () =
  let data = Bytes.of_string "payload" in
  check Alcotest.bool "different keys differ" false
    (Int64.equal (Hashing.hmac ~key:"k1" data) (Hashing.hmac ~key:"k2" data))

let crc32_known () =
  (* CRC-32 of "123456789" is 0xCBF43926 (IEEE). *)
  check Alcotest.int32 "crc32 check value" 0xCBF43926l
    (Hashing.crc32 (Bytes.of_string "123456789"))

let crc32_detects_flip () =
  let b = Bytes.of_string "some frame payload" in
  let c1 = Hashing.crc32 b in
  Bytes.set b 3 'X';
  check Alcotest.bool "flip detected" false (Int32.equal c1 (Hashing.crc32 b))

(* ---- Range coder ---- *)

let rc_roundtrip_cases () =
  List.iter
    (fun s ->
      let b = Bytes.of_string s in
      let enc = Range_coder.encode b in
      check Alcotest.bytes ("roundtrip " ^ String.escaped (String.sub s 0 (min 8 (String.length s))))
        b (Range_coder.decode enc))
    [
      "";
      "a";
      "aaaa";
      "hello world";
      String.make 10_000 '\000';
      String.init 256 Char.chr;
      String.concat "" (List.init 64 (fun i -> Printf.sprintf "line %d\n" i));
    ]

let rc_compresses_sparse () =
  let b = Bytes.make 4096 '\000' in
  let ratio = Range_coder.ratio b in
  if ratio > 0.05 then Alcotest.failf "sparse page should compress hard, got %.3f" ratio

let rc_random_data_no_explosion () =
  let r = Rng.create ~seed:11L in
  let b = Rng.bytes r 4096 in
  let enc = Range_coder.encode b in
  if Bytes.length enc > 4096 + 256 then
    Alcotest.failf "incompressible data exploded: %d" (Bytes.length enc)

let rc_qcheck_roundtrip =
  qtest "range coder roundtrips arbitrary bytes"
    QCheck2.Gen.(string_size (int_bound 3000))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.equal b (Range_coder.decode (Range_coder.encode b)))

let rc_qcheck_sparse =
  qtest ~count:50 "range coder roundtrips sparse pages"
    QCheck2.Gen.(list_size (int_bound 64) (pair (int_bound 4095) (int_bound 255)))
    (fun edits ->
      let b = Bytes.make 4096 '\000' in
      List.iter (fun (i, v) -> Bytes.set b i (Char.chr v)) edits;
      Bytes.equal b (Range_coder.decode (Range_coder.encode b)))

let rc_guarded_random_bounded () =
  (* The guarded container stores raw whenever coding would expand, so its
     output is never more than one tag byte over the input — even on
     incompressible random bytes, where plain [encode] may expand. *)
  let r = Rng.create ~seed:23L in
  for _ = 1 to 32 do
    let b = Rng.bytes r (Rng.int r 5000) in
    let enc = Range_coder.encode_guarded b in
    if Bytes.length enc > Bytes.length b + 1 then
      Alcotest.failf "guarded output expanded: %d -> %d" (Bytes.length b) (Bytes.length enc);
    check Alcotest.bytes "guarded roundtrip (random)" b (Range_coder.decode_guarded enc)
  done

let rc_guarded_compressible () =
  let b = Bytes.make 4096 '\000' in
  let enc = Range_coder.encode_guarded b in
  if Bytes.length enc >= 4096 then
    Alcotest.failf "guarded output should still compress sparse pages: %d" (Bytes.length enc);
  check Alcotest.bytes "guarded roundtrip (sparse)" b (Range_coder.decode_guarded enc)

let rc_guarded_rejects_garbage () =
  Alcotest.check_raises "empty input" (Failure "Range_coder.decode_guarded: empty input")
    (fun () -> ignore (Range_coder.decode_guarded Bytes.empty));
  Alcotest.check_raises "bad tag" (Failure "Range_coder.decode_guarded: bad tag 7") (fun () ->
      ignore (Range_coder.decode_guarded (Bytes.of_string "\007abc")))

(* Shaped buffers for codec fuzzing: the degenerate inputs memsync traffic
   rarely produces — empty, single-byte, all-equal runs, seeded
   incompressible noise — alongside arbitrary strings. *)
let gen_shaped_bytes =
  QCheck2.Gen.(
    oneof
      [
        return Bytes.empty;
        map (fun c -> Bytes.make 1 c) char;
        map2 (fun n c -> Bytes.make n c) (int_range 1 8192) char;
        map2
          (fun seed n -> Rng.bytes (Rng.create ~seed:(Int64.of_int seed)) n)
          int (int_range 1 8192);
        map Bytes.of_string (string_size (int_bound 4096));
      ])

let rc_qcheck_shaped =
  qtest ~count:300 "range coder roundtrips shaped buffers"
    gen_shaped_bytes
    (fun b ->
      let enc = Range_coder.encode b in
      Bytes.equal b (Range_coder.decode enc)
      (* Incompressible input must not blow up the wire either. *)
      && Bytes.length enc <= Bytes.length b + 256)

let rc_qcheck_guarded =
  qtest ~count:300 "guarded range coder bounded and roundtrips shaped buffers" gen_shaped_bytes
    (fun b ->
      let enc = Range_coder.encode_guarded b in
      Bytes.length enc <= Bytes.length b + 1 && Bytes.equal b (Range_coder.decode_guarded enc))

(* ---- Delta ---- *)

let delta_identity () =
  let b = Bytes.of_string "unchanged page" in
  let d = Delta.diff ~old_:b ~fresh:b in
  check Alcotest.bool "identity delta" true (Delta.is_identity d);
  check Alcotest.bytes "apply identity" b (Delta.apply ~old_:b ~delta:d)

let delta_basic () =
  let old_ = Bytes.of_string "hello world, how are you" in
  let fresh = Bytes.of_string "hello belts, how are YOU" in
  let d = Delta.diff ~old_ ~fresh in
  check Alcotest.bytes "apply" fresh (Delta.apply ~old_ ~delta:d)

let delta_smaller_than_page () =
  let old_ = Bytes.make 4096 'a' in
  let fresh = Bytes.copy old_ in
  Bytes.set fresh 100 'b';
  Bytes.set fresh 4000 'c';
  let d = Delta.diff ~old_ ~fresh in
  if Bytes.length d > 64 then Alcotest.failf "delta too large: %d" (Bytes.length d);
  check Alcotest.bytes "apply" fresh (Delta.apply ~old_ ~delta:d)

let delta_length_mismatch () =
  Alcotest.check_raises "mismatch rejected" (Invalid_argument "Delta.diff: length mismatch")
    (fun () -> ignore (Delta.diff ~old_:(Bytes.create 4) ~fresh:(Bytes.create 5)))

let delta_wrong_base () =
  let old_ = Bytes.make 16 'a' and fresh = Bytes.make 16 'b' in
  let d = Delta.diff ~old_ ~fresh in
  Alcotest.check_raises "base length checked" (Failure "Delta.apply: base length mismatch")
    (fun () -> ignore (Delta.apply ~old_:(Bytes.create 8) ~delta:d))

let delta_qcheck =
  qtest "delta diff/apply reconstructs"
    QCheck2.Gen.(
      bind (int_range 1 2000) (fun n ->
          pair (string_size (return n)) (list_size (int_bound 50) (pair (int_bound (n - 1)) char))))
    (fun (base, edits) ->
      let old_ = Bytes.of_string base in
      let fresh = Bytes.copy old_ in
      List.iter (fun (i, c) -> Bytes.set fresh i c) edits;
      Bytes.equal fresh (Delta.apply ~old_ ~delta:(Delta.diff ~old_ ~fresh)))

let delta_qcheck_shaped =
  qtest ~count:300 "delta diff/apply handles shaped buffer pairs"
    QCheck2.Gen.(pair gen_shaped_bytes (pair (int_bound 2) int))
    (fun (old_, (variant, seed)) ->
      let n = Bytes.length old_ in
      let fresh =
        match variant with
        | 0 -> Bytes.copy old_ (* identity, incl. the empty/empty pair *)
        | 1 -> Bytes.make n 'x' (* all-equal overwrite *)
        | _ -> Rng.bytes (Rng.create ~seed:(Int64.of_int seed)) n (* incompressible *)
      in
      let d = Delta.diff ~old_ ~fresh in
      Bytes.equal fresh (Delta.apply ~old_ ~delta:d)
      && (not (Bytes.equal old_ fresh) || Delta.is_identity d))

(* ---- Sexpr ---- *)

let sexpr_const_fold () =
  let e = Sexpr.logor (Sexpr.const 0x0FL) (Sexpr.const 0x30L) in
  check Alcotest.bool "folded to const" true (match e with Sexpr.Const 0x3FL -> true | _ -> false)

let sexpr_symbolic_pipeline () =
  (* Listing 1(a): qrk_mmu = read(MMU_CONFIG); write(MMU_CONFIG, qrk | 0x10) *)
  let s = Sexpr.fresh_sym ~origin:"MMU_CONFIG" in
  let written = Sexpr.logor (Sexpr.sym s) (Sexpr.const 0x10L) in
  check Alcotest.bool "unresolved before bind" false (Sexpr.is_concrete written);
  check Alcotest.int "one unbound sym" 1 (List.length (Sexpr.unbound_syms written));
  Sexpr.bind s 0x08L ~speculative:false;
  check (Alcotest.option Alcotest.int64) "resolves after bind" (Some 0x18L) (Sexpr.eval written)

let sexpr_ops () =
  let v e = Option.get (Sexpr.eval e) in
  check Alcotest.int64 "and" 0x0CL (v (Sexpr.logand (Sexpr.const 0xFCL) (Sexpr.const 0x0FL)));
  check Alcotest.int64 "xor" 0xFFL (v (Sexpr.logxor (Sexpr.const 0xF0L) (Sexpr.const 0x0FL)));
  check Alcotest.int64 "add" 5L (v (Sexpr.add (Sexpr.const 2L) (Sexpr.const 3L)));
  check Alcotest.int64 "sub" (-1L) (v (Sexpr.sub (Sexpr.const 2L) (Sexpr.const 3L)));
  check Alcotest.int64 "shl" 8L (v (Sexpr.shift_left (Sexpr.const 1L) 3));
  check Alcotest.int64 "shr" 1L (v (Sexpr.shift_right (Sexpr.const 8L) 3));
  check Alcotest.int64 "not" (-1L) (v (Sexpr.lognot (Sexpr.const 0L)))

let sexpr_force_unbound () =
  let s = Sexpr.fresh_sym ~origin:"X" in
  Alcotest.check_raises "force unbound"
    (Failure "Sexpr.force_exn: expression contains unbound symbols") (fun () ->
      ignore (Sexpr.force_exn (Sexpr.sym s)))

let sexpr_rebind_conflict () =
  let s = Sexpr.fresh_sym ~origin:"X" in
  Sexpr.bind s 1L ~speculative:false;
  (try
     Sexpr.bind s 2L ~speculative:false;
     Alcotest.fail "conflicting bind should raise"
   with Invalid_argument _ -> ());
  Sexpr.bind s 1L ~speculative:false (* same value is fine *)

let sexpr_speculation_taint () =
  let s = Sexpr.fresh_sym ~origin:"JOB_IRQ_STATUS" in
  let e = Sexpr.logand (Sexpr.sym s) (Sexpr.const 0xFFL) in
  Sexpr.bind s 1L ~speculative:true;
  check Alcotest.bool "tainted while speculative" true (Sexpr.speculative e);
  Sexpr.confirm s;
  check Alcotest.bool "clean after confirm" false (Sexpr.speculative e)

let sexpr_rebind_clears_spec () =
  let s = Sexpr.fresh_sym ~origin:"X" in
  Sexpr.bind s 1L ~speculative:true;
  Sexpr.rebind s 5L;
  check Alcotest.bool "not speculative" false (Sexpr.speculative (Sexpr.sym s));
  check (Alcotest.option Alcotest.int64) "new value" (Some 5L) (Sexpr.eval (Sexpr.sym s))

let sexpr_unbound_dedup () =
  let s = Sexpr.fresh_sym ~origin:"X" in
  let e = Sexpr.add (Sexpr.sym s) (Sexpr.sym s) in
  check Alcotest.int "deduplicated" 1 (List.length (Sexpr.unbound_syms e))

let sexpr_qcheck_fold_matches_eval =
  qtest "constant folding agrees with eval"
    QCheck2.Gen.(triple (int_range 0 6) int64 int64)
    (fun (op, a, b) ->
      let build f = f (Sexpr.const a) (Sexpr.const b) in
      let e =
        match op with
        | 0 -> build Sexpr.logor
        | 1 -> build Sexpr.logand
        | 2 -> build Sexpr.logxor
        | 3 -> build Sexpr.add
        | 4 -> build Sexpr.sub
        | 5 -> Sexpr.shift_left (Sexpr.const a) (Int64.to_int b land 31)
        | _ -> Sexpr.shift_right (Sexpr.const a) (Int64.to_int b land 31)
      in
      Sexpr.is_concrete e)

(* ---- Hexdump ---- *)

let hexdump_sizes () =
  check Alcotest.string "bytes" "17 B" (Grt_util.Hexdump.size_to_string 17);
  check Alcotest.string "kb" "1.5 KB" (Grt_util.Hexdump.size_to_string 1536);
  check Alcotest.string "mb" "2.00 MB" (Grt_util.Hexdump.size_to_string (2 * 1024 * 1024));
  check Alcotest.string "gb" "1.00 GB" (Grt_util.Hexdump.size_to_string (1024 * 1024 * 1024))

let contains_substring hay needle = Grt_util.Strutil.contains_sub needle hay

(* ---- Strutil ---- *)

let strutil_basics () =
  let module S = Grt_util.Strutil in
  check Alcotest.bool "prefix yes" true (S.has_prefix "kbase_pm_" "kbase_pm_init_hw");
  check Alcotest.bool "prefix whole" true (S.has_prefix "abc" "abc");
  check Alcotest.bool "prefix no" false (S.has_prefix "kbase_pm_" "kbase_gpuprops");
  check Alcotest.bool "prefix longer than s" false (S.has_prefix "abcd" "abc");
  check Alcotest.bool "suffix yes" true (S.has_suffix "_irq" "kbase_job_irq");
  check Alcotest.bool "suffix no" false (S.has_suffix "_irq" "kbase_job_irqs");
  check Alcotest.bool "sub middle" true (S.contains_sub "irq" "kbase_job_irq_handler");
  check Alcotest.bool "sub absent" false (S.contains_sub "mmu" "kbase_job_irq_handler");
  check Alcotest.bool "sub empty" true (S.contains_sub "" "anything")

let hexdump_renders () =
  let out = Format.asprintf "%a" Grt_util.Hexdump.pp_bytes (Bytes.of_string "hello\x00world!") in
  check Alcotest.bool "contains hex" true (contains_substring out "68 65 6c 6c 6f");
  check Alcotest.bool "contains ascii gutter" true (contains_substring out "|hello.world!|")

let () =
  Alcotest.run "grt_util"
    [
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick rng_seed_sensitivity;
          Alcotest.test_case "int bounds" `Quick rng_int_bounds;
          Alcotest.test_case "int rejects <=0" `Quick rng_int_rejects_nonpositive;
          Alcotest.test_case "float bounds" `Quick rng_float_bounds;
          Alcotest.test_case "int64 range" `Quick rng_int64_range;
          Alcotest.test_case "copy" `Quick rng_copy_independent;
          Alcotest.test_case "split" `Quick rng_split_diverges;
          Alcotest.test_case "bytes" `Quick rng_bytes_len;
        ] );
      ( "byte_buf",
        [
          Alcotest.test_case "primitives" `Quick byte_buf_primitives;
          Alcotest.test_case "varint roundtrip" `Quick byte_buf_varint_roundtrip;
          Alcotest.test_case "varint negative" `Quick byte_buf_varint_negative;
          Alcotest.test_case "truncation" `Quick byte_buf_truncation;
          Alcotest.test_case "growth" `Quick byte_buf_growth;
          Alcotest.test_case "clear" `Quick byte_buf_clear;
        ] );
      ( "hashing",
        [
          Alcotest.test_case "stable" `Quick hashing_stable;
          Alcotest.test_case "sub consistent" `Quick hashing_sub_consistent;
          Alcotest.test_case "hmac keys" `Quick hashing_hmac_keys;
          Alcotest.test_case "crc32 known value" `Quick crc32_known;
          Alcotest.test_case "crc32 detects flip" `Quick crc32_detects_flip;
        ] );
      ( "range_coder",
        [
          Alcotest.test_case "roundtrip cases" `Quick rc_roundtrip_cases;
          Alcotest.test_case "sparse compresses" `Quick rc_compresses_sparse;
          Alcotest.test_case "no explosion" `Quick rc_random_data_no_explosion;
          Alcotest.test_case "guarded bounded on random" `Quick rc_guarded_random_bounded;
          Alcotest.test_case "guarded still compresses" `Quick rc_guarded_compressible;
          Alcotest.test_case "guarded rejects garbage" `Quick rc_guarded_rejects_garbage;
          rc_qcheck_roundtrip;
          rc_qcheck_sparse;
          rc_qcheck_shaped;
          rc_qcheck_guarded;
        ] );
      ( "delta",
        [
          Alcotest.test_case "identity" `Quick delta_identity;
          Alcotest.test_case "basic" `Quick delta_basic;
          Alcotest.test_case "small for sparse edits" `Quick delta_smaller_than_page;
          Alcotest.test_case "length mismatch" `Quick delta_length_mismatch;
          Alcotest.test_case "wrong base" `Quick delta_wrong_base;
          delta_qcheck;
          delta_qcheck_shaped;
        ] );
      ( "sexpr",
        [
          Alcotest.test_case "const folding" `Quick sexpr_const_fold;
          Alcotest.test_case "listing 1a pipeline" `Quick sexpr_symbolic_pipeline;
          Alcotest.test_case "operators" `Quick sexpr_ops;
          Alcotest.test_case "force unbound" `Quick sexpr_force_unbound;
          Alcotest.test_case "rebind conflict" `Quick sexpr_rebind_conflict;
          Alcotest.test_case "speculation taint" `Quick sexpr_speculation_taint;
          Alcotest.test_case "rebind clears speculation" `Quick sexpr_rebind_clears_spec;
          Alcotest.test_case "unbound dedup" `Quick sexpr_unbound_dedup;
          sexpr_qcheck_fold_matches_eval;
        ] );
      ( "hexdump",
        [
          Alcotest.test_case "sizes" `Quick hexdump_sizes;
          Alcotest.test_case "renders" `Quick hexdump_renders;
        ] );
      ("strutil", [ Alcotest.test_case "basics" `Quick strutil_basics ]);
    ]
