(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (§7) from the simulator, and measures the host-side cost of
   each artifact with Bechamel.

   Usage:
     bench/main.exe                 print every table and figure
     bench/main.exe fig7a|fig7b|table1|table2|fig8|fig9|stats|polling|rollback|ablation|faults|memsync|replay|fleet
     bench/main.exe bechamel        run the Bechamel micro-suite only
     bench/main.exe --json FILE [CMD]   additionally write the rows as JSON
*)

module E = Grt.Experiments
module Mode = Grt.Mode
module Profile = Grt_net.Profile
module Json = Grt_util.Json

(* The recorder's hot loop ships whole page images; with the default 256 KB
   nursery those survive straight into the major heap and the harness
   spends a measurable slice of every run in the collector. A 32 MB minor
   heap lets a session's transient copies die young. Allocation counts
   (words/access) are unaffected — this only moves collector time, never
   what the simulator computes. *)
let () = Gc.set { (Gc.get ()) with Gc.minor_heap_size = 1 lsl 22 }

let ctx = E.create_ctx ()

let hr title =
  Printf.printf "\n==== %s ====\n" title

(* --json FILE accumulator: every table registers the rows it just printed,
   converted with the Experiments row_json functions, so the JSON file
   carries exactly the printed values. *)
let json_rows : (string * Json.t) list ref = ref []

(* Rows whose minor-words/access exceeded the checked-in ceiling under
   --enforce-ceiling; the failure exit happens after the JSON dump. *)
let ceiling_failures : string list ref = ref []

(* Fleet rows that broke a floor (throughput, hit rate, cross-domain
   determinism, scaling) under --enforce-floor; same deferred exit. *)
let fleet_floor_failures : string list ref = ref []

let add_json key to_json rows = json_rows := !json_rows @ [ (key, Json.Arr (List.map to_json rows)) ]

let fig7 profile label =
  hr
    (Printf.sprintf "Figure 7%s: recording delays, %s (RTT %.0f ms, BW %.0f Mbps)" label
       profile.Profile.name (profile.Profile.rtt_s *. 1e3)
       (profile.Profile.bandwidth_bps /. 1e6));
  Printf.printf "%-12s %10s %10s %10s %10s  %s\n" "NN" "Naive(s)" "OursM(s)" "OursMD(s)"
    "OursMDS(s)" "MDS vs Naive";
  let rows = E.fig7 ctx ~profile in
  List.iter
    (fun (r : E.fig7_row) ->
      let d m = List.assoc m r.E.delays in
      Printf.printf "%-12s %10.1f %10.1f %10.1f %10.1f  -%2.0f%%\n" r.E.workload (d Mode.Naive)
        (d Mode.Ours_m) (d Mode.Ours_md) (d Mode.Ours_mds)
        (100. *. (1. -. (d Mode.Ours_mds /. d Mode.Naive))))
    rows;
  add_json ("fig7" ^ label) E.fig7_row_json rows

let table1 () =
  hr "Table 1: record-run statistics (WiFi)";
  Printf.printf "%-12s %6s | %8s %8s %8s | %12s %10s\n" "NN" "jobs" "OursM" "OursMD" "OursMDS"
    "Naive(MB)" "OursM(MB)";
  let rows = E.table1 ctx ~profile:Profile.wifi in
  List.iter
    (fun (r : E.table1_row) ->
      Printf.printf "%-12s %6d | %8d %8d %8d | %12.2f %10.2f\n" r.E.workload r.E.gpu_jobs
        r.E.rtts_m r.E.rtts_md r.E.rtts_mds r.E.memsync_naive_mb r.E.memsync_ours_mb)
    rows;
  add_json "table1" E.table1_row_json rows

let table2 () =
  hr "Table 2: replay vs native delays";
  Printf.printf "%-12s %12s %12s %10s %8s\n" "NN" "Native(ms)" "Replay(ms)" "diff" "bitexact";
  let rows = E.table2 ctx in
  List.iter
    (fun (r : E.table2_row) ->
      Printf.printf "%-12s %12.1f %12.1f %+9.0f%% %8s\n" r.E.workload r.E.native_ms r.E.replay_ms
        (100. *. ((r.E.replay_ms /. r.E.native_ms) -. 1.))
        (if r.E.outputs_match then "yes" else "NO"))
    rows;
  add_json "table2" E.table2_row_json rows

let fig8 () =
  hr "Figure 8: breakdown of speculative commits (normalized; counts in parens)";
  Printf.printf "%-12s %8s" "NN" "(total)";
  List.iter
    (fun c -> Printf.printf " %11s" (Grt.Drivershim.category_name c))
    Grt.Drivershim.all_categories;
  print_newline ();
  let rows = E.fig8 ctx ~profile:Profile.wifi in
  List.iter
    (fun (r : E.fig8_row) ->
      Printf.printf "%-12s %8s" r.E.workload (Printf.sprintf "(%d)" r.E.total_speculated);
      List.iter (fun (_, share) -> Printf.printf " %10.1f%%" (100. *. share)) r.E.shares;
      print_newline ())
    rows;
  add_json "fig8" E.fig8_row_json rows

let fig9 () =
  hr "Figure 9: client energy for record and replay (J)";
  Printf.printf "%-12s %14s %14s %10s %10s\n" "NN" "Record/Naive" "Record/GR-T" "saving" "Replay";
  let rows = E.fig9 ctx ~profile:Profile.wifi in
  List.iter
    (fun (r : E.fig9_row) ->
      Printf.printf "%-12s %14.1f %14.1f %9.0f%% %10.3f\n" r.E.workload r.E.record_naive_j
        r.E.record_mds_j
        (100. *. (1. -. (r.E.record_mds_j /. r.E.record_naive_j)))
        r.E.replay_j)
    rows;
  add_json "fig9" E.fig9_row_json rows

let stats () =
  hr "§7.3 deferral & speculation statistics (OursMDS, WiFi)";
  Printf.printf "%-12s %9s %9s %10s %10s %9s\n" "NN" "accesses" "commits" "acc/commit"
    "spec %" "nondet";
  let rows = E.deferral_stats ctx ~profile:Profile.wifi in
  List.iter
    (fun (r : E.stats_row) ->
      Printf.printf "%-12s %9d %9d %10.1f %9.0f%% %9d\n" r.E.workload r.E.accesses r.E.commits
        r.E.accesses_per_commit r.E.speculated_pct r.E.rejected_nondet)
    rows;
  add_json "stats" E.stats_row_json rows

let polling () =
  hr "§7.3 polling-loop offload (OursMDS, WiFi)";
  Printf.printf "%-12s %10s %10s %14s %12s %10s\n" "NN" "instances" "offloaded" "RTTs w/o off"
    "RTTs w/ off" "saved";
  let rows = E.polling ctx ~profile:Profile.wifi in
  List.iter
    (fun (r : E.polling_row) ->
      Printf.printf "%-12s %10d %10d %14d %12d %10d\n" r.E.workload r.E.instances r.E.offloaded
        r.E.rtts_without_offload r.E.rtts_with_offload
        (r.E.rtts_without_offload - r.E.rtts_with_offload))
    rows;
  add_json "polling" E.polling_row_json rows

let rollback () =
  hr "§7.3 misprediction injection & rollback (MNIST, VGG16)";
  Printf.printf "%-12s %9s %10s %13s %10s\n" "NN" "detected" "rollbacks" "recovery(s)" "completed";
  let rows = E.rollback ctx ~profile:Profile.wifi ~nets:[ Grt_mlfw.Zoo.mnist; Grt_mlfw.Zoo.vgg16 ] in
  List.iter
    (fun (r : E.rollback_row) ->
      Printf.printf "%-12s %9s %10d %13.2f %10s\n" r.E.workload
        (if r.E.detected then "yes" else "NO")
        r.E.rollbacks r.E.rollback_s
        (if r.E.completed then "yes" else "NO"))
    rows;
  add_json "rollback" E.rollback_row_json rows

let faults () =
  hr "Lossy-link campaign (MNIST, OursMDS): window x drop sweep x {wifi, cellular}";
  Printf.printf "%-10s %6s %8s %10s %12s %10s %10s %10s %10s\n" "profile" "window" "drop"
    "delay(s)" "retransmits" "degraded" "rollbacks" "linkdowns" "bitexact";
  let rows = E.fault_campaign ctx ~net:Grt_mlfw.Zoo.mnist () in
  List.iter
    (fun (r : E.fault_row) ->
      Printf.printf "%-10s %6d %7.0f%% %10.1f %12d %10d %10d %10d %10s\n" r.E.profile_name
        r.E.window (100. *. r.E.drop_prob) r.E.total_s r.E.retransmits r.E.degraded_entries
        r.E.rollbacks r.E.link_downs
        (if r.E.blob_identical then "yes" else "NO"))
    rows;
  add_json "faults" E.fault_row_json rows

let replay () =
  hr "Replay throughput: interpreted vs compiled (host replays/sec)";
  Printf.printf "%-12s %8s %12s %12s %12s %9s %8s %8s %8s %8s\n" "NN" "entries" "interp(r/s)"
    "cold(r/s)" "warm(r/s)" "speedup" "fused" "static" "dynamic" "bitexact";
  let rows = E.replay_bench ctx in
  List.iter
    (fun (r : E.replay_bench_row) ->
      Printf.printf "%-12s %8d %12.1f %12.1f %12.1f %8.1fx %8d %8d %8d %8s\n" r.E.workload
        r.E.entries r.E.interpreted_rps r.E.compiled_cold_rps r.E.compiled_warm_rps
        r.E.warm_speedup r.E.fused_writes r.E.static_pages r.E.dynamic_loads
        (if r.E.bit_identical then "yes" else "NO"))
    rows;
  add_json "replay" E.replay_bench_row_json rows

let memsync () =
  hr "Memsync fast-path sweep (synthetic 64-page Cmd region, 8 rounds)";
  Printf.printf "%-22s %8s %6s %12s %10s %10s %10s %6s\n" "variant" "dirtied" "dup" "wire(B)"
    "raw(B)" "visited" "hash-hits" "repro";
  let rows = E.memsync_sweep () in
  List.iter
    (fun (r : E.memsync_sweep_row) ->
      Printf.printf "%-22s %8d %5.0f%% %12d %10d %10d %10d %6s\n" r.E.variant
        r.E.dirtied_per_round (100. *. r.E.dup_rate) r.E.sweep_wire_bytes r.E.sweep_raw_bytes
        r.E.pages_visited r.E.hash_hits
        (if r.E.reproduced then "yes" else "NO"))
    rows;
  add_json "memsync_sweep" E.memsync_sweep_row_json rows;
  hr "Memsync fast path on MNIST (OursMDS, WiFi): baseline vs dedup+adaptive";
  Printf.printf "%-10s %12s %10s %10s %10s %8s %7s  %s\n" "config" "down(B)" "up(B)" "blob(KB)"
    "visited" "meta" "replay" "encodings";
  let wrows = E.memsync_workload ctx ~net:Grt_mlfw.Zoo.mnist in
  List.iter
    (fun (r : E.memsync_workload_row) ->
      Printf.printf "%-10s %12d %10d %10.1f %10d %8d %7s  %s\n" r.E.config_label
        r.E.down_wire_bytes r.E.up_wire_bytes
        (float_of_int r.E.blob_bytes /. 1024.)
        r.E.mpages_visited r.E.mpages_meta
        (if r.E.replay_matches then "yes" else "NO")
        (String.concat ", "
           (List.map (fun (k, v) -> Printf.sprintf "%s:%d" k v) r.E.workload_enc_mix)))
    wrows;
  add_json "memsync_workload" E.memsync_workload_row_json wrows

(* Fleet floors (recorded 2026-08 on the 1-core container that produced
   BENCH_fleet.json; wall sessions/s there was ~2600 at every domain
   count). Host-throughput floors carry large headroom — they catch
   collapse, not jitter. The semantic-equality check across all rows is
   exact and always enforced: the domain-parallel merge must not move a
   single semantic column. The >= 2.5x scaling floor only arms on hosts
   with at least 4 recommended domains — a 1-core runner cannot exhibit
   wall-clock speedup, however correct the sharding. *)
let fleet_hit_rate_floor = 0.90
let fleet_wall_sessions_floor = 300.
let fleet_scaling_floor = 2.5

(* The columns that must be bit-identical across execution modes and
   domain counts (hits vs coalesced split differs between sequential and
   scheduled runs, so only their sum is compared). *)
let fleet_semantic_sig (r : E.fleet_row) =
  ( r.E.fleet_clients,
    r.E.distinct_keys,
    r.E.fleet_recordings,
    r.E.fleet_cache_hits + r.E.fleet_coalesced,
    r.E.fleet_failures,
    r.E.fleet_evictions,
    r.E.fleet_sync_wire_mb,
    r.E.fleet_blocking_rtts,
    r.E.spec_cross_hits,
    r.E.sync_cross_hits )

let fleet ~enforce () =
  hr
    (Printf.sprintf
       "Fleet: recording service, %d Zipf(%.1f) clients over %d NNs x %d SKUs"
       Grt.Service.default_fleet.Grt.Service.clients Grt.Service.default_fleet.Grt.Service.zipf_s
       (List.length Grt.Service.default_fleet.Grt.Service.nets)
       (List.length Grt.Service.default_fleet.Grt.Service.skus));
  Printf.printf "%-22s %7s %5s %5s %6s %5s %9s %9s %9s %10s %8s %9s %9s\n" "mode"
    "clients" "keys" "rec" "hits" "fail" "hitrate" "sess/s" "wall s/s" "sync(MB)"
    "RTTs" "crossS" "crossM";
  let show row =
    Printf.printf "%-22s %7d %5d %5d %6d %5d %8.1f%% %9.0f %9.0f %10.2f %8d %9d %9d\n%!"
      row.E.fleet_label row.E.fleet_clients row.E.distinct_keys row.E.fleet_recordings
      (row.E.fleet_cache_hits + row.E.fleet_coalesced)
      row.E.fleet_failures
      (100. *. row.E.fleet_hit_rate)
      row.E.sessions_per_s row.E.wall_sessions_per_s row.E.fleet_sync_wire_mb
      row.E.fleet_blocking_rtts row.E.spec_cross_hits row.E.sync_cross_hits;
    row
  in
  let go ?(sequential = false) ?(domains = 1) () =
    show
      (fst
         (E.fleet ~options:Grt.Service.default_fleet ~sequential ~domains
            ~wall:Unix.gettimeofday ()))
  in
  let d1 = go () in
  let d2 = go ~domains:2 () in
  let d4 = go ~domains:4 () in
  let seq = go ~sequential:true () in
  Printf.printf
    "  virtual span %.1fs, p95 turnaround %.1fs, %d yields / %d switches, %d shards at d4\n"
    d1.E.virtual_s d1.E.p95_turnaround_s d1.E.fleet_yields d1.E.fleet_switches
    (List.length d4.E.fleet_shards);
  add_json "fleet" E.fleet_row_json [ d1; d2; d4; seq ];
  if enforce then begin
    let fail fmt = Printf.ksprintf (fun m -> fleet_floor_failures := m :: !fleet_floor_failures) fmt in
    let sig1 = fleet_semantic_sig d1 in
    List.iter
      (fun r ->
        if fleet_semantic_sig r <> sig1 then
          fail "%s: semantic columns diverge from %s" r.E.fleet_label d1.E.fleet_label)
      [ d2; d4; seq ];
    if d1.E.fleet_hit_rate < fleet_hit_rate_floor then
      fail "hit rate %.3f below floor %.2f" d1.E.fleet_hit_rate fleet_hit_rate_floor;
    List.iter
      (fun r ->
        if r.E.wall_sessions_per_s < fleet_wall_sessions_floor then
          fail "%s: %.0f wall sessions/s below floor %.0f" r.E.fleet_label
            r.E.wall_sessions_per_s fleet_wall_sessions_floor)
      [ d1; d2; d4 ];
    if Grt_util.Par.parallelism_available && Grt_util.Par.recommended_domains () >= 4 then begin
      let scaling = d4.E.wall_sessions_per_s /. d1.E.wall_sessions_per_s in
      if scaling < fleet_scaling_floor then
        fail "d4/d1 wall scaling %.2fx below floor %.1fx" scaling fleet_scaling_floor
    end
    else
      Printf.printf
        "  scaling floor skipped: %d recommended domain(s) on this host\n"
        (Grt_util.Par.recommended_domains ())
  end

(* Simulator raw-speed smoke. Prints one row per recording configuration
   with the accesses/sec throughput and the minor-words/access allocation
   rate against its checked-in ceiling; with [--enforce-ceiling] (the CI
   smoke) a row above its ceiling fails the run. *)
let speed ~enforce () =
  hr "Simulator speed: recording hot loop (host-side, GPU time excluded)";
  Printf.printf "%-28s %9s %6s %9s %12s %11s %9s %6s\n" "config" "accesses" "iters" "host(s)"
    "accesses/s" "words/acc" "ceiling" "ok";
  let rows = E.speed ctx in
  let failed = ref [] in
  List.iter
    (fun (r : E.speed_row) ->
      let ceiling = E.speed_ceiling r.E.speed_label in
      let ok = match ceiling with Some c -> r.E.minor_words_per_access <= c | None -> true in
      if not ok then failed := r.E.speed_label :: !failed;
      Printf.printf "%-28s %9d %6d %9.3f %12.0f %11.1f %9s %6s\n" r.E.speed_label
        r.E.speed_accesses r.E.speed_iters r.E.speed_host_s r.E.accesses_per_s
        r.E.minor_words_per_access
        (match ceiling with Some c -> Printf.sprintf "%.0f" c | None -> "-")
        (if ok then "yes" else "NO"))
    rows;
  add_json "speed" E.speed_row_json rows;
  match (enforce, !failed) with
  | true, (_ :: _ as labels) ->
    (* Defer the failure exit until after the JSON file is written, so the
       CI artifact still carries the regressing rows. *)
    ceiling_failures := List.rev labels
  | _ -> ()

let ablation () =
  hr "Ablation of design knobs (MobileNet, WiFi)";
  Printf.printf "%-38s %10s %8s %10s\n" "variant" "delay(s)" "RTTs" "sync(MB)";
  let rows = E.ablation ctx ~profile:Profile.wifi ~net:Grt_mlfw.Zoo.mobilenet in
  List.iter
    (fun (r : E.ablation_row) ->
      Printf.printf "%-38s %10.1f %8d %10.2f\n" r.E.label r.E.delay_s r.E.rtts r.E.sync_mb)
    rows;
  add_json "ablation" E.ablation_row_json rows

(* ---- Bechamel micro-suite: host-side cost of regenerating each artifact
   (MNIST-scale so samples stay short). ---- *)

let bechamel_tests () =
  let open Bechamel in
  let mnist = Grt_mlfw.Zoo.mnist in
  let record mode profile () =
    ignore
      (Grt.Orchestrate.record ~profile ~mode ~sku:Grt_gpu.Sku.g71_mp8 ~net:mnist ~seed:42L ())
  in
  let replay_blob =
    lazy
      (let o =
         Grt.Orchestrate.record ~profile:Profile.wifi ~mode:Mode.Ours_mds
           ~sku:Grt_gpu.Sku.g71_mp8 ~net:mnist ~seed:42L ()
       in
       o.Grt.Orchestrate.blob)
  in
  let plan = Grt_mlfw.Network.expand mnist in
  let input = Grt_mlfw.Runner.input_values plan ~seed:42L in
  let params = Grt_mlfw.Runner.weight_values plan ~seed:42L in
  [
    Test.make ~name:"fig7.record.naive" (Staged.stage (record Mode.Naive Profile.wifi));
    Test.make ~name:"fig7.record.ours_mds" (Staged.stage (record Mode.Ours_mds Profile.wifi));
    Test.make ~name:"fig7b.record.cellular" (Staged.stage (record Mode.Ours_mds Profile.cellular));
    Test.make ~name:"table1.record.ours_m" (Staged.stage (record Mode.Ours_m Profile.wifi));
    Test.make ~name:"table1.record.ours_md" (Staged.stage (record Mode.Ours_md Profile.wifi));
    Test.make ~name:"table2.native"
      (Staged.stage (fun () ->
           let clock = Grt_sim.Clock.create () in
           ignore
             (Grt.Native.run_inference ~clock ~sku:Grt_gpu.Sku.g71_mp8 ~net:mnist ~seed:42L
                ~input ())));
    Test.make ~name:"table2.replay"
      (Staged.stage (fun () ->
           ignore
             (Grt.Orchestrate.replay_recording ~sku:Grt_gpu.Sku.g71_mp8
                ~blob:(Lazy.force replay_blob) ~input ~params ~seed:42L ())));
    Test.make ~name:"fig9.energy.record"
      (Staged.stage (record Mode.Ours_mds Profile.cellular));
    Test.make ~name:"memsync.range_coder"
      (Staged.stage (fun () ->
           let rng = Grt_util.Rng.create ~seed:7L in
           let page = Bytes.make 4096 '\000' in
           for _ = 0 to 127 do
             Bytes.set page (Grt_util.Rng.int rng 4096) 'x'
           done;
           ignore (Grt_util.Range_coder.encode page)));
  ]

let run_bechamel () =
  let open Bechamel in
  hr "Bechamel: host-side cost per artifact (monotonic clock)";
  let instances = [ Toolkit.Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:50 ~quota:(Time.second 1.5) () in
  let ols = Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |] in
  List.iter
    (fun test ->
      let results = Benchmark.all cfg instances test in
      let analyzed = Analyze.all ols Toolkit.Instance.monotonic_clock results in
      Hashtbl.iter
        (fun name est ->
          match Analyze.OLS.estimates est with
          | Some (ns :: _) -> Printf.printf "%-28s %12.3f ms/run\n%!" name (ns /. 1e6)
          | Some [] | None -> Printf.printf "%-28s (no estimate)\n%!" name)
        analyzed)
    (bechamel_tests ())

let all () =
  fig7 Profile.wifi "a";
  fig7 Profile.cellular "b";
  table1 ();
  table2 ();
  fig8 ();
  fig9 ();
  stats ();
  polling ();
  rollback ();
  ablation ();
  faults ();
  memsync ();
  replay ();
  fleet ~enforce:false ();
  speed ~enforce:false ();
  run_bechamel ()

let () =
  (* Strip --json FILE anywhere on the command line; the first remaining
     argument (if any) selects the command. *)
  let enforce_ceiling = ref false in
  let enforce_floor = ref false in
  let rec split json cmds = function
    | [] -> (json, List.rev cmds)
    | "--json" :: file :: rest -> split (Some file) cmds rest
    | [ "--json" ] ->
      Printf.eprintf "--json needs a FILE argument\n";
      exit 2
    | "--enforce-ceiling" :: rest ->
      enforce_ceiling := true;
      split json cmds rest
    | "--enforce-floor" :: rest ->
      enforce_floor := true;
      split json cmds rest
    | a :: rest -> split json (a :: cmds) rest
  in
  let json_file, cmds = split None [] (List.tl (Array.to_list Sys.argv)) in
  (match match cmds with [] -> "all" | c :: _ -> c with
  | "fig7a" -> fig7 Profile.wifi "a"
  | "fig7b" -> fig7 Profile.cellular "b"
  | "table1" -> table1 ()
  | "table2" -> table2 ()
  | "fig8" -> fig8 ()
  | "fig9" -> fig9 ()
  | "stats" -> stats ()
  | "polling" -> polling ()
  | "rollback" -> rollback ()
  | "ablation" -> ablation ()
  | "faults" -> faults ()
  | "memsync" -> memsync ()
  | "replay" -> replay ()
  | "fleet" -> fleet ~enforce:!enforce_floor ()
  | "speed" -> speed ~enforce:!enforce_ceiling ()
  | "bechamel" -> run_bechamel ()
  | "all" -> all ()
  | other ->
    Printf.eprintf
      "unknown command %s (expected \
       fig7a|fig7b|table1|table2|fig8|fig9|stats|polling|rollback|ablation|faults|memsync|replay|fleet|speed|bechamel|all)\n"
      other;
    exit 2);
  (match json_file with
  | None -> ()
  | Some path ->
    let oc = open_out path in
    output_string oc (Json.to_string (Json.Obj !json_rows));
    output_string oc "\n";
    close_out oc;
    Printf.printf "\nwrote %s (%d tables)\n" path (List.length !json_rows));
  (match List.rev !fleet_floor_failures with
  | [] -> ()
  | msgs ->
    Printf.eprintf "fleet: floor violations:\n";
    List.iter (fun m -> Printf.eprintf "  %s\n" m) msgs;
    exit 1);
  match !ceiling_failures with
  | [] -> ()
  | labels ->
    Printf.eprintf "speed: minor-words/access above checked-in ceiling: %s\n"
      (String.concat ", " labels);
    exit 1
